//! A B-tree over simulated memory (CLRS-style, minimum degree 4).
//!
//! The paper's B-tree workload has the *highest* intra-transaction cache
//! reuse (~68 %, "in part due to the good spatial locality of the Btree
//! keys", §7.3): each node packs keys contiguously across a few cache
//! lines, so binary-search probes and key shifts repeatedly touch the same
//! lines — exactly what HASTM's mark-bit filter exploits.
//!
//! Node layout (24 data words):
//!
//! | word | contents |
//! |------|----------|
//! | 0 | leaf flag |
//! | 1 | number of keys |
//! | 2..9 | keys (up to 7) |
//! | 9..16 | values |
//! | 16..24 | children (up to 8) |

use hastm::{ObjRef, TmContext, TxResult};
use hastm_sim::Addr;

use crate::map::TxMap;

/// Minimum degree `t`: nodes hold `t-1 ..= 2t-1` keys.
const T: u32 = 4;
const MAX_KEYS: u32 = 2 * T - 1; // 7
const NODE_WORDS: u32 = 2 + MAX_KEYS + MAX_KEYS + (MAX_KEYS + 1); // 24

const LEAF: u32 = 0;
const NKEYS: u32 = 1;
const KEYS: u32 = 2;
const VALS: u32 = KEYS + MAX_KEYS;
const KIDS: u32 = VALS + MAX_KEYS;

/// A `u64 -> u64` B-tree.
#[derive(Copy, Clone, Debug)]
pub struct BTree {
    /// Holder object whose word 0 is the root pointer.
    root_holder: ObjRef,
}

fn as_ref(word: u64) -> ObjRef {
    ObjRef(Addr(word))
}

/// Thin accessors over a node object.
struct Node(ObjRef);

impl Node {
    fn is_leaf(&self, ctx: &mut dyn TmContext) -> TxResult<bool> {
        Ok(ctx.ctx_read(self.0, LEAF)? != 0)
    }
    fn nkeys(&self, ctx: &mut dyn TmContext) -> TxResult<u32> {
        Ok(ctx.ctx_read(self.0, NKEYS)? as u32)
    }
    fn set_nkeys(&self, ctx: &mut dyn TmContext, n: u32) -> TxResult<()> {
        ctx.ctx_write(self.0, NKEYS, n as u64)
    }
    fn key(&self, ctx: &mut dyn TmContext, i: u32) -> TxResult<u64> {
        ctx.ctx_read(self.0, KEYS + i)
    }
    fn set_key(&self, ctx: &mut dyn TmContext, i: u32, k: u64) -> TxResult<()> {
        ctx.ctx_write(self.0, KEYS + i, k)
    }
    fn val(&self, ctx: &mut dyn TmContext, i: u32) -> TxResult<u64> {
        ctx.ctx_read(self.0, VALS + i)
    }
    fn set_val(&self, ctx: &mut dyn TmContext, i: u32, v: u64) -> TxResult<()> {
        ctx.ctx_write(self.0, VALS + i, v)
    }
    fn child(&self, ctx: &mut dyn TmContext, i: u32) -> TxResult<Node> {
        Ok(Node(as_ref(ctx.ctx_read(self.0, KIDS + i)?)))
    }
    fn set_child(&self, ctx: &mut dyn TmContext, i: u32, c: &Node) -> TxResult<()> {
        ctx.ctx_write(self.0, KIDS + i, c.0 .0 .0)
    }

    /// First index `i` with `key <= keys[i]`, or `nkeys` if none.
    fn lower_bound(&self, ctx: &mut dyn TmContext, key: u64) -> TxResult<u32> {
        let n = self.nkeys(ctx)?;
        let mut i = 0;
        while i < n && self.key(ctx, i)? < key {
            ctx.ctx_work(2); // compare + branch per probe
            i += 1;
        }
        Ok(i)
    }
}

impl BTree {
    /// Creates an empty tree (a single empty leaf as root).
    pub fn create(ctx: &mut dyn TmContext) -> TxResult<Self> {
        let root_holder = ctx.ctx_alloc(1);
        let root = Self::alloc_node(ctx, true)?;
        ctx.ctx_write(root_holder, 0, root.0 .0 .0)?;
        Ok(BTree { root_holder })
    }

    fn alloc_node(ctx: &mut dyn TmContext, leaf: bool) -> TxResult<Node> {
        let obj = ctx.ctx_alloc(NODE_WORDS);
        if leaf {
            ctx.ctx_write(obj, LEAF, 1)?;
        }
        Ok(Node(obj))
    }

    fn root(&self, ctx: &mut dyn TmContext) -> TxResult<Node> {
        Ok(Node(as_ref(ctx.ctx_read(self.root_holder, 0)?)))
    }

    /// Splits full child `i` of non-full internal node `x`.
    fn split_child(ctx: &mut dyn TmContext, x: &Node, i: u32) -> TxResult<()> {
        let y = x.child(ctx, i)?;
        let y_leaf = y.is_leaf(ctx)?;
        let z = Self::alloc_node(ctx, y_leaf)?;
        // z takes y's upper t-1 keys.
        for j in 0..T - 1 {
            let tmp = y.key(ctx, j + T)?;
            z.set_key(ctx, j, tmp)?;
            let tmp = y.val(ctx, j + T)?;
            z.set_val(ctx, j, tmp)?;
        }
        if !y_leaf {
            for j in 0..T {
                let c = y.child(ctx, j + T)?;
                z.set_child(ctx, j, &c)?;
            }
        }
        z.set_nkeys(ctx, T - 1)?;
        y.set_nkeys(ctx, T - 1)?;
        // Shift x's children/keys right to make room at i / i+1.
        let xn = x.nkeys(ctx)?;
        let mut j = xn;
        while j > i {
            let c = x.child(ctx, j)?;
            x.set_child(ctx, j + 1, &c)?;
            let tmp = x.key(ctx, j - 1)?;
            x.set_key(ctx, j, tmp)?;
            let tmp = x.val(ctx, j - 1)?;
            x.set_val(ctx, j, tmp)?;
            j -= 1;
        }
        x.set_child(ctx, i + 1, &z)?;
        // Median of y moves up.
        let tmp = y.key(ctx, T - 1)?;
        x.set_key(ctx, i, tmp)?;
        let tmp = y.val(ctx, T - 1)?;
        x.set_val(ctx, i, tmp)?;
        x.set_nkeys(ctx, xn + 1)?;
        Ok(())
    }

    fn insert_nonfull(ctx: &mut dyn TmContext, x: Node, key: u64, value: u64) -> TxResult<bool> {
        let mut x = x;
        loop {
            ctx.ctx_work(6); // per-level control flow
            let n = x.nkeys(ctx)?;
            let i = x.lower_bound(ctx, key)?;
            if i < n && x.key(ctx, i)? == key {
                x.set_val(ctx, i, value)?;
                return Ok(false);
            }
            if x.is_leaf(ctx)? {
                // Shift right and place.
                let mut j = n;
                while j > i {
                    let tmp = x.key(ctx, j - 1)?;
                    x.set_key(ctx, j, tmp)?;
                    let tmp = x.val(ctx, j - 1)?;
                    x.set_val(ctx, j, tmp)?;
                    j -= 1;
                }
                x.set_key(ctx, i, key)?;
                x.set_val(ctx, i, value)?;
                x.set_nkeys(ctx, n + 1)?;
                return Ok(true);
            }
            let mut i = i;
            let c = x.child(ctx, i)?;
            if c.nkeys(ctx)? == MAX_KEYS {
                Self::split_child(ctx, &x, i)?;
                let up_key = x.key(ctx, i)?;
                if key == up_key {
                    x.set_val(ctx, i, value)?;
                    return Ok(false);
                }
                if key > up_key {
                    i += 1;
                }
            }
            x = x.child(ctx, i)?;
        }
    }

    /// Rightmost (maximum) key/value of the subtree at `x`.
    fn subtree_max(ctx: &mut dyn TmContext, x: Node) -> TxResult<(u64, u64)> {
        let mut x = x;
        loop {
            let n = x.nkeys(ctx)?;
            if x.is_leaf(ctx)? {
                return Ok((x.key(ctx, n - 1)?, x.val(ctx, n - 1)?));
            }
            x = x.child(ctx, n)?;
        }
    }

    /// Leftmost (minimum) key/value of the subtree at `x`.
    fn subtree_min(ctx: &mut dyn TmContext, x: Node) -> TxResult<(u64, u64)> {
        let mut x = x;
        loop {
            if x.is_leaf(ctx)? {
                return Ok((x.key(ctx, 0)?, x.val(ctx, 0)?));
            }
            x = x.child(ctx, 0)?;
        }
    }

    /// Merges child `i+1` (and separator key `i`) into child `i` of `x`.
    /// Both children must hold `t-1` keys.
    fn merge_children(ctx: &mut dyn TmContext, x: &Node, i: u32) -> TxResult<()> {
        let y = x.child(ctx, i)?;
        let z = x.child(ctx, i + 1)?;
        // Separator moves down into y.
        let tmp = x.key(ctx, i)?;
        y.set_key(ctx, T - 1, tmp)?;
        let tmp = x.val(ctx, i)?;
        y.set_val(ctx, T - 1, tmp)?;
        for j in 0..T - 1 {
            let tmp = z.key(ctx, j)?;
            y.set_key(ctx, T + j, tmp)?;
            let tmp = z.val(ctx, j)?;
            y.set_val(ctx, T + j, tmp)?;
        }
        if !y.is_leaf(ctx)? {
            for j in 0..T {
                let c = z.child(ctx, j)?;
                y.set_child(ctx, T + j, &c)?;
            }
        }
        y.set_nkeys(ctx, MAX_KEYS)?;
        // Close the gap in x.
        let xn = x.nkeys(ctx)?;
        for j in i..xn - 1 {
            let tmp = x.key(ctx, j + 1)?;
            x.set_key(ctx, j, tmp)?;
            let tmp = x.val(ctx, j + 1)?;
            x.set_val(ctx, j, tmp)?;
        }
        for j in i + 1..xn {
            let c = x.child(ctx, j + 1)?;
            x.set_child(ctx, j, &c)?;
        }
        x.set_nkeys(ctx, xn - 1)?;
        Ok(())
    }

    /// Removes `key` from the subtree at `x`, which is guaranteed to hold
    /// at least `t` keys (or be the root).
    fn remove_from(ctx: &mut dyn TmContext, x: Node, key: u64) -> TxResult<bool> {
        ctx.ctx_work(6); // per-level control flow
        let n = x.nkeys(ctx)?;
        let i = x.lower_bound(ctx, key)?;
        let leaf = x.is_leaf(ctx)?;
        if i < n && x.key(ctx, i)? == key {
            if leaf {
                // Case 1: delete from leaf.
                for j in i..n - 1 {
                    let tmp = x.key(ctx, j + 1)?;
                    x.set_key(ctx, j, tmp)?;
                    let tmp = x.val(ctx, j + 1)?;
                    x.set_val(ctx, j, tmp)?;
                }
                x.set_nkeys(ctx, n - 1)?;
                return Ok(true);
            }
            // Case 2: key in internal node.
            let y = x.child(ctx, i)?;
            if y.nkeys(ctx)? >= T {
                let yc = x.child(ctx, i)?;
                let (pk, pv) = Self::subtree_max(ctx, yc)?;
                x.set_key(ctx, i, pk)?;
                x.set_val(ctx, i, pv)?;
                let down = Self::ensure_t(ctx, &x, i)?;
                return Self::remove_from(ctx, down, pk).map(|_| true);
            }
            let z = x.child(ctx, i + 1)?;
            if z.nkeys(ctx)? >= T {
                let zc = x.child(ctx, i + 1)?;
                let (sk, sv) = Self::subtree_min(ctx, zc)?;
                x.set_key(ctx, i, sk)?;
                x.set_val(ctx, i, sv)?;
                let down = Self::ensure_t(ctx, &x, i + 1)?;
                return Self::remove_from(ctx, down, sk).map(|_| true);
            }
            // Case 2c: both children minimal — merge and recurse.
            Self::merge_children(ctx, &x, i)?;
            let merged = x.child(ctx, i)?;
            return Self::remove_from(ctx, merged, key);
        }
        if leaf {
            return Ok(false);
        }
        // Case 3: descend, topping up the child first.
        let child = Self::ensure_t(ctx, &x, i)?;
        Self::remove_from(ctx, child, key)
    }

    /// Guarantees child `i` of `x` holds at least `t` keys before descent
    /// (CLRS cases 3a/3b: borrow from a sibling or merge). Returns the
    /// (possibly different) node to descend into.
    fn ensure_t(ctx: &mut dyn TmContext, x: &Node, i: u32) -> TxResult<Node> {
        let c = x.child(ctx, i)?;
        if c.nkeys(ctx)? >= T {
            return Ok(c);
        }
        let xn = x.nkeys(ctx)?;
        // 3a: borrow from left sibling.
        if i > 0 {
            let left = x.child(ctx, i - 1)?;
            let ln = left.nkeys(ctx)?;
            if ln >= T {
                let cn = c.nkeys(ctx)?;
                // Shift c right.
                let mut j = cn;
                while j > 0 {
                    let tmp = c.key(ctx, j - 1)?;
                    c.set_key(ctx, j, tmp)?;
                    let tmp = c.val(ctx, j - 1)?;
                    c.set_val(ctx, j, tmp)?;
                    j -= 1;
                }
                if !c.is_leaf(ctx)? {
                    let mut j = cn + 1;
                    while j > 0 {
                        let ch = c.child(ctx, j - 1)?;
                        c.set_child(ctx, j, &ch)?;
                        j -= 1;
                    }
                    let lc = left.child(ctx, ln)?;
                    c.set_child(ctx, 0, &lc)?;
                }
                // Separator moves down; left's last key moves up.
                let tmp = x.key(ctx, i - 1)?;
                c.set_key(ctx, 0, tmp)?;
                let tmp = x.val(ctx, i - 1)?;
                c.set_val(ctx, 0, tmp)?;
                let tmp = left.key(ctx, ln - 1)?;
                x.set_key(ctx, i - 1, tmp)?;
                let tmp = left.val(ctx, ln - 1)?;
                x.set_val(ctx, i - 1, tmp)?;
                left.set_nkeys(ctx, ln - 1)?;
                c.set_nkeys(ctx, cn + 1)?;
                return Ok(c);
            }
        }
        // 3a: borrow from right sibling.
        if i < xn {
            let right = x.child(ctx, i + 1)?;
            let rn = right.nkeys(ctx)?;
            if rn >= T {
                let cn = c.nkeys(ctx)?;
                let tmp = x.key(ctx, i)?;
                c.set_key(ctx, cn, tmp)?;
                let tmp = x.val(ctx, i)?;
                c.set_val(ctx, cn, tmp)?;
                if !c.is_leaf(ctx)? {
                    let rc = right.child(ctx, 0)?;
                    c.set_child(ctx, cn + 1, &rc)?;
                }
                let tmp = right.key(ctx, 0)?;
                x.set_key(ctx, i, tmp)?;
                let tmp = right.val(ctx, 0)?;
                x.set_val(ctx, i, tmp)?;
                for j in 0..rn - 1 {
                    let tmp = right.key(ctx, j + 1)?;
                    right.set_key(ctx, j, tmp)?;
                    let tmp = right.val(ctx, j + 1)?;
                    right.set_val(ctx, j, tmp)?;
                }
                if !right.is_leaf(ctx)? {
                    for j in 0..rn {
                        let ch = right.child(ctx, j + 1)?;
                        right.set_child(ctx, j, &ch)?;
                    }
                }
                right.set_nkeys(ctx, rn - 1)?;
                c.set_nkeys(ctx, cn + 1)?;
                return Ok(c);
            }
        }
        // 3b: merge with a sibling.
        if i < xn {
            Self::merge_children(ctx, x, i)?;
            x.child(ctx, i)
        } else {
            Self::merge_children(ctx, x, i - 1)?;
            x.child(ctx, i - 1)
        }
    }

    fn count(ctx: &mut dyn TmContext, x: Node) -> TxResult<u64> {
        let n = x.nkeys(ctx)?;
        let mut total = n as u64;
        if !x.is_leaf(ctx)? {
            for i in 0..=n {
                let c = x.child(ctx, i)?;
                total += Self::count(ctx, c)?;
            }
        }
        Ok(total)
    }

    /// Verifies key ordering and node-fill invariants; returns the key
    /// count.
    pub fn check_invariants(&self, ctx: &mut dyn TmContext) -> TxResult<u64> {
        fn walk(
            ctx: &mut dyn TmContext,
            x: Node,
            lo: Option<u64>,
            hi: Option<u64>,
            is_root: bool,
            depth: u32,
            leaf_depth: &mut Option<u32>,
        ) -> TxResult<u64> {
            let n = x.nkeys(ctx)?;
            assert!(n <= MAX_KEYS, "node overfull");
            if !is_root {
                assert!(n >= T - 1, "node underfull: {n}");
            }
            for i in 1..n {
                assert!(
                    x.key(ctx, i - 1)? < x.key(ctx, i)?,
                    "keys out of order within node"
                );
            }
            if n > 0 {
                assert!(lo.is_none_or(|lo| x.key(ctx, 0).unwrap() > lo));
                assert!(hi.is_none_or(|hi| x.key(ctx, n - 1).unwrap() < hi));
            }
            if x.is_leaf(ctx)? {
                match leaf_depth {
                    None => *leaf_depth = Some(depth),
                    Some(d) => assert_eq!(*d, depth, "leaves at unequal depth"),
                }
                return Ok(n as u64);
            }
            let mut total = n as u64;
            for i in 0..=n {
                let child_lo = if i == 0 { lo } else { Some(x.key(ctx, i - 1)?) };
                let child_hi = if i == n { hi } else { Some(x.key(ctx, i)?) };
                let c = x.child(ctx, i)?;
                total += walk(ctx, c, child_lo, child_hi, false, depth + 1, leaf_depth)?;
            }
            Ok(total)
        }
        let root = self.root(ctx)?;
        let mut leaf_depth = None;
        walk(ctx, root, None, None, true, 0, &mut leaf_depth)
    }
}

impl TxMap for BTree {
    fn insert(&self, ctx: &mut dyn TmContext, key: u64, value: u64) -> TxResult<bool> {
        let root = self.root(ctx)?;
        if root.nkeys(ctx)? == MAX_KEYS {
            let new_root = Self::alloc_node(ctx, false)?;
            new_root.set_child(ctx, 0, &root)?;
            ctx.ctx_write(self.root_holder, 0, new_root.0 .0 .0)?;
            Self::split_child(ctx, &new_root, 0)?;
            return Self::insert_nonfull(ctx, new_root, key, value);
        }
        Self::insert_nonfull(ctx, root, key, value)
    }

    fn remove(&self, ctx: &mut dyn TmContext, key: u64) -> TxResult<bool> {
        let root = self.root(ctx)?;
        let start = self.root(ctx)?;
        let removed = Self::remove_from(ctx, start, key)?;
        // Shrink the root if it emptied out.
        if root.nkeys(ctx)? == 0 && !root.is_leaf(ctx)? {
            let only = root.child(ctx, 0)?;
            ctx.ctx_write(self.root_holder, 0, only.0 .0 .0)?;
        }
        Ok(removed)
    }

    fn get(&self, ctx: &mut dyn TmContext, key: u64) -> TxResult<Option<u64>> {
        let mut x = self.root(ctx)?;
        let mut hops = 0u32;
        loop {
            ctx.ctx_work(6);
            let n = x.nkeys(ctx)?;
            let i = x.lower_bound(ctx, key)?;
            if i < n && x.key(ctx, i)? == key {
                return Ok(Some(x.val(ctx, i)?));
            }
            if x.is_leaf(ctx)? {
                return Ok(None);
            }
            x = x.child(ctx, i)?;
            hops += 1;
            if hops.is_multiple_of(32) {
                ctx.ctx_guard()?;
            }
        }
    }

    fn len(&self, ctx: &mut dyn TmContext) -> TxResult<u64> {
        let root = self.root(ctx)?;
        Self::count(ctx, root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::check_against_reference;
    use hastm::{Granularity, StmConfig, StmRuntime, TxThread};
    use hastm_sim::{Machine, MachineConfig};

    fn with_tree<R: Send>(
        config: StmConfig,
        f: impl FnOnce(&mut TxThread<'_, '_>, BTree) -> R + Send,
    ) -> R {
        let mut m = Machine::new(MachineConfig::default());
        let rt = StmRuntime::new(&mut m, config);
        m.run_one(|cpu| {
            let mut tx = TxThread::new(&rt, cpu);
            let tree = tx.atomic(|tx| BTree::create(tx));
            f(&mut tx, tree)
        })
        .0
    }

    #[test]
    fn insert_fill_and_split() {
        with_tree(StmConfig::stm(Granularity::CacheLine), |tx, t| {
            tx.atomic(|tx| {
                for k in 0..64u64 {
                    assert!(t.insert(tx, k, k + 100)?);
                }
                assert_eq!(t.check_invariants(tx)?, 64);
                for k in 0..64u64 {
                    assert_eq!(t.get(tx, k)?, Some(k + 100));
                }
                assert_eq!(t.get(tx, 64)?, None);
                Ok(())
            });
        });
    }

    #[test]
    fn overwrite_returns_false() {
        with_tree(StmConfig::stm(Granularity::CacheLine), |tx, t| {
            tx.atomic(|tx| {
                assert!(t.insert(tx, 9, 1)?);
                assert!(!t.insert(tx, 9, 2)?);
                assert_eq!(t.get(tx, 9)?, Some(2));
                assert_eq!(t.len(tx)?, 1);
                Ok(())
            });
        });
    }

    #[test]
    fn deletion_all_cases() {
        // Dense insert + interleaved removals exercise leaf deletion,
        // internal-node deletion, borrows, and merges.
        with_tree(StmConfig::stm(Granularity::CacheLine), |tx, t| {
            tx.atomic(|tx| {
                for k in 0..200u64 {
                    t.insert(tx, k, k)?;
                }
                // Remove evens (hits internal keys and forces merges).
                for k in (0..200u64).step_by(2) {
                    assert!(t.remove(tx, k)?, "remove {k}");
                    if k % 20 == 0 {
                        t.check_invariants(tx)?;
                    }
                }
                assert_eq!(t.check_invariants(tx)?, 100);
                for k in 0..200u64 {
                    assert_eq!(t.get(tx, k)?.is_some(), k % 2 == 1, "key {k}");
                }
                // Remove the rest in descending order.
                for k in (0..200u64).rev() {
                    let expect = k % 2 == 1;
                    assert_eq!(t.remove(tx, k)?, expect, "remove {k}");
                }
                assert!(t.is_empty(tx)?);
                t.check_invariants(tx)?;
                Ok(())
            });
        });
    }

    #[test]
    fn matches_reference_model() {
        for cfg in [
            StmConfig::stm(Granularity::CacheLine),
            StmConfig::hastm_cautious(Granularity::CacheLine),
        ] {
            with_tree(cfg, |tx, t| {
                let mut x = 99u64;
                let ops: Vec<(u8, u64)> = (0..500)
                    .map(|_| {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        ((x >> 8) as u8, x % 96)
                    })
                    .collect();
                tx.atomic(|tx| {
                    check_against_reference(&t, tx, &ops);
                    t.check_invariants(tx)?;
                    Ok(())
                });
            });
        }
    }

    #[test]
    fn random_churn_keeps_invariants() {
        with_tree(StmConfig::stm(Granularity::CacheLine), |tx, t| {
            let mut x = 1234567u64;
            tx.atomic(|tx| {
                for round in 0..6 {
                    for _ in 0..100 {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let k = x % 64;
                        if x & 1 == 0 {
                            t.insert(tx, k, k)?;
                        } else {
                            t.remove(tx, k)?;
                        }
                    }
                    let _ = round;
                    t.check_invariants(tx)?;
                }
                Ok(())
            });
        });
    }
}
