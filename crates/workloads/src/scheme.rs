//! Synchronization schemes under comparison and their per-thread
//! executors.
//!
//! Every evaluation figure compares the *same* workload code running under
//! different concurrency-control schemes; [`Scheme`] names them and
//! [`ThreadExec`] gives each thread a uniform `atomic(closure)` interface
//! over whichever machinery the scheme needs.

use hastm::{
    Granularity, ModePolicy, ObjRef, StmConfig, StmRuntime, TmContext, TxResult, TxThread, TxnStats,
};
use hastm_htm::HytmThread;
use hastm_locks::{LockExec, SeqExec, SpinLock};
use hastm_sim::Cpu;

/// A concurrency-control scheme from the paper's evaluation.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Unsynchronized single-thread execution (Figure 16's baseline).
    Sequential,
    /// Coarse-grained spinlock.
    Lock,
    /// The base software TM (§4).
    Stm,
    /// HASTM pinned to cautious mode (§5; "Cautious"/"HASTM-Cautious").
    HastmCautious,
    /// Full HASTM: cautious/aggressive controlled per thread count (§6).
    Hastm,
    /// HASTM with the mark-bit filter disabled (Figure 17,
    /// "HASTM-NoReuse").
    HastmNoReuse,
    /// Always-aggressive-first strawman (Figures 21–22,
    /// "Naïve Aggressive").
    NaiveAggressive,
    /// Best-case hybrid TM (hardware path with record checks, Figure 14).
    Hytm,
}

impl Scheme {
    /// All schemes, in presentation order.
    pub const ALL: [Scheme; 8] = [
        Scheme::Sequential,
        Scheme::Lock,
        Scheme::Stm,
        Scheme::HastmCautious,
        Scheme::Hastm,
        Scheme::HastmNoReuse,
        Scheme::NaiveAggressive,
        Scheme::Hytm,
    ];

    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Scheme::Sequential => "Sequential",
            Scheme::Lock => "Lock",
            Scheme::Stm => "STM",
            Scheme::HastmCautious => "HASTM-Cautious",
            Scheme::Hastm => "HASTM",
            Scheme::HastmNoReuse => "HASTM-NoReuse",
            Scheme::NaiveAggressive => "Naive-Aggressive",
            Scheme::Hytm => "Hybrid-TM",
        }
    }

    /// The STM runtime configuration this scheme needs. `threads` selects
    /// the HASTM mode policy: single-threaded runs use the
    /// aggressive-after-commit policy, multi-threaded runs the abort-ratio
    /// watermark (§6).
    pub fn stm_config(self, granularity: Granularity, threads: usize) -> StmConfig {
        let hastm_policy = if threads <= 1 {
            ModePolicy::SingleThreadAggressive
        } else {
            ModePolicy::AbortRatioWatermark { watermark: 0.1 }
        };
        match self {
            Scheme::Sequential | Scheme::Lock | Scheme::Stm | Scheme::Hytm => {
                StmConfig::stm(granularity)
            }
            Scheme::HastmCautious => StmConfig::hastm_cautious(granularity),
            Scheme::Hastm => StmConfig::hastm(granularity, hastm_policy),
            Scheme::HastmNoReuse => {
                let mut c = StmConfig::hastm(granularity, hastm_policy);
                c.no_reuse = true;
                c
            }
            Scheme::NaiveAggressive => StmConfig::hastm(granularity, ModePolicy::NaiveAggressive),
        }
    }

    /// Whether this scheme runs transactions through the STM/HASTM engine.
    pub fn is_stm_based(self) -> bool {
        matches!(
            self,
            Scheme::Stm
                | Scheme::HastmCautious
                | Scheme::Hastm
                | Scheme::HastmNoReuse
                | Scheme::NaiveAggressive
        )
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

enum Inner<'c, 'm> {
    Seq(SeqExec<'c, 'm>),
    Lock(LockExec<'c, 'm>),
    Stm(TxThread<'c, 'm>),
    Hytm(HytmThread<'c, 'm>),
}

/// One thread's executor for a chosen scheme.
pub struct ThreadExec<'c, 'm> {
    inner: Inner<'c, 'm>,
}

impl std::fmt::Debug for ThreadExec<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self.inner {
            Inner::Seq(_) => "Seq",
            Inner::Lock(_) => "Lock",
            Inner::Stm(_) => "Stm",
            Inner::Hytm(_) => "Hytm",
        };
        f.debug_struct("ThreadExec").field("kind", &kind).finish()
    }
}

impl<'c, 'm> ThreadExec<'c, 'm> {
    /// Builds the executor for `scheme`. `lock` must be the shared global
    /// lock when `scheme` is [`Scheme::Lock`] (ignored otherwise).
    pub fn new(
        scheme: Scheme,
        runtime: &'c StmRuntime,
        cpu: &'c mut Cpu<'m>,
        lock: SpinLock,
    ) -> Self {
        let inner = match scheme {
            Scheme::Sequential => Inner::Seq(SeqExec::new(runtime, cpu)),
            Scheme::Lock => Inner::Lock(LockExec::new(runtime, cpu, lock)),
            Scheme::Hytm => Inner::Hytm(HytmThread::new(runtime, cpu, 4)),
            _ => Inner::Stm(TxThread::new(runtime, cpu)),
        };
        ThreadExec { inner }
    }

    /// Runs one atomic region.
    pub fn atomic<R>(&mut self, mut f: impl FnMut(&mut dyn TmContext) -> TxResult<R>) -> R {
        match &mut self.inner {
            Inner::Seq(e) => e.atomic(f),
            Inner::Lock(e) => e.atomic(f),
            Inner::Stm(tx) => tx.atomic(|tx| f(tx)),
            Inner::Hytm(hy) => hy.atomic(f),
        }
    }

    /// Runs one declared read-only atomic region. Under an STM-based
    /// scheme this takes the snapshot-read path (abort-free when the
    /// runtime keeps multi-version rings); every other scheme — and an
    /// STM runtime configured [`hastm::Versioning::Single`] — executes it
    /// as an ordinary atomic region, so callers can route lookups through
    /// this unconditionally.
    pub fn atomic_ro<R>(&mut self, mut f: impl FnMut(&mut dyn TmContext) -> TxResult<R>) -> R {
        match &mut self.inner {
            Inner::Stm(tx) => tx.atomic_ro(|tx| f(tx)),
            _ => self.atomic(f),
        }
    }

    /// Allocates an object outside any atomic region.
    pub fn alloc_obj(&mut self, data_words: u32) -> ObjRef {
        match &mut self.inner {
            Inner::Seq(e) => e.alloc_obj(data_words),
            Inner::Lock(e) => e.alloc_obj(data_words),
            Inner::Stm(tx) => tx.alloc_obj(data_words),
            Inner::Hytm(hy) => hy.alloc_obj(data_words),
        }
    }

    /// STM statistics, if this scheme runs on the STM engine.
    pub fn txn_stats(&self) -> Option<TxnStats> {
        match &self.inner {
            Inner::Stm(tx) => Some(tx.stats().clone()),
            Inner::Hytm(_) | Inner::Seq(_) | Inner::Lock(_) => None,
        }
    }

    /// HyTM statistics, if applicable.
    pub fn hytm_stats(&self) -> Option<hastm_htm::hybrid::HytmStats> {
        match &self.inner {
            Inner::Hytm(hy) => Some(hy.stats().clone()),
            _ => None,
        }
    }

    fn cpu(&mut self) -> &mut Cpu<'m> {
        match &mut self.inner {
            Inner::Seq(e) => e.cpu(),
            Inner::Lock(e) => e.cpu(),
            Inner::Stm(tx) => tx.cpu(),
            Inner::Hytm(hy) => hy.software().cpu(),
        }
    }

    /// The thread's simulated cycle clock (outside any atomic region).
    pub fn clock(&mut self) -> u64 {
        self.cpu().now()
    }

    /// Stalls until the cycle clock reaches `tick` (no-op if it already
    /// has) — the open-loop arrival wait of the OLTP mill.
    pub fn idle_until(&mut self, tick: u64) {
        let now = self.cpu().now();
        if tick > now {
            self.cpu().tick(tick - now);
        }
    }
}

impl hastm::TmExec for ThreadExec<'_, '_> {
    fn atomic<R>(&mut self, f: impl FnMut(&mut dyn TmContext) -> TxResult<R>) -> R {
        ThreadExec::atomic(self, f)
    }

    fn atomic_ro<R>(&mut self, f: impl FnMut(&mut dyn TmContext) -> TxResult<R>) -> R {
        ThreadExec::atomic_ro(self, f)
    }

    fn alloc_obj(&mut self, data_words: u32) -> ObjRef {
        ThreadExec::alloc_obj(self, data_words)
    }

    fn clock(&mut self) -> u64 {
        ThreadExec::clock(self)
    }

    fn idle_until(&mut self, tick: u64) {
        ThreadExec::idle_until(self, tick)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hastm_sim::{Machine, MachineConfig};

    #[test]
    fn config_selection() {
        let c = Scheme::Hastm.stm_config(Granularity::Object, 1);
        assert_eq!(c.mode_policy, ModePolicy::SingleThreadAggressive);
        let c = Scheme::Hastm.stm_config(Granularity::Object, 4);
        assert!(matches!(
            c.mode_policy,
            ModePolicy::AbortRatioWatermark { .. }
        ));
        let c = Scheme::HastmNoReuse.stm_config(Granularity::CacheLine, 1);
        assert!(c.no_reuse);
        assert!(!Scheme::Hytm.is_stm_based());
        assert!(Scheme::NaiveAggressive.is_stm_based());
    }

    #[test]
    fn every_scheme_runs_an_increment() {
        for scheme in Scheme::ALL {
            let mut m = Machine::new(MachineConfig::default());
            let rt = StmRuntime::new(&mut m, scheme.stm_config(Granularity::CacheLine, 1));
            let lock = SpinLock::alloc(rt.heap());
            let (v, _) = m.run_one(|cpu| {
                let mut ex = ThreadExec::new(scheme, &rt, cpu, lock);
                let o = ex.alloc_obj(1);
                ex.atomic(|ctx| ctx.ctx_write(o, 0, 1));
                ex.atomic(|ctx| {
                    let v = ctx.ctx_read(o, 0)?;
                    ctx.ctx_write(o, 0, v + 41)?;
                    ctx.ctx_read(o, 0)
                })
            });
            assert_eq!(v, 42, "scheme {scheme}");
        }
    }

    #[test]
    fn stats_accessors_match_scheme() {
        let mut m = Machine::new(MachineConfig::default());
        let rt = StmRuntime::new(&mut m, Scheme::Hastm.stm_config(Granularity::CacheLine, 1));
        let lock = SpinLock::alloc(rt.heap());
        m.run_one(|cpu| {
            let mut ex = ThreadExec::new(Scheme::Lock, &rt, cpu, lock);
            let o = ex.alloc_obj(1);
            ex.atomic(|ctx| ctx.ctx_write(o, 0, 1));
            assert!(ex.txn_stats().is_none(), "lock scheme has no STM stats");
            assert!(ex.hytm_stats().is_none());
        });
        m.run_one(|cpu| {
            let mut ex = ThreadExec::new(Scheme::Hastm, &rt, cpu, lock);
            let o = ex.alloc_obj(1);
            ex.atomic(|ctx| ctx.ctx_write(o, 0, 1));
            let s = ex.txn_stats().expect("stm stats");
            assert_eq!(s.commits, 1);
        });
        m.run_one(|cpu| {
            let mut ex = ThreadExec::new(Scheme::Hytm, &rt, cpu, lock);
            let o = ex.alloc_obj(1);
            ex.atomic(|ctx| ctx.ctx_write(o, 0, 1));
            let s = ex.hytm_stats().expect("hytm stats");
            assert_eq!(s.hw_commits, 1);
        });
    }

    #[test]
    fn ctx_work_charges_cycles_under_every_scheme() {
        for scheme in Scheme::ALL {
            let mut m = Machine::new(MachineConfig::default());
            let rt = StmRuntime::new(&mut m, scheme.stm_config(Granularity::CacheLine, 1));
            let lock = SpinLock::alloc(rt.heap());
            let ((), report) = m.run_one(|cpu| {
                let mut ex = ThreadExec::new(scheme, &rt, cpu, lock);
                ex.atomic(|ctx| {
                    ctx.ctx_work(1000);
                    Ok(())
                });
            });
            assert!(
                report.makespan() >= 1000 / 3,
                "{scheme}: app work must advance the clock"
            );
        }
    }

    #[test]
    fn atomic_ro_reads_under_every_scheme_and_versioning() {
        use hastm::Versioning;
        for scheme in Scheme::ALL {
            for versioning in [Versioning::Single, Versioning::Multi { k: 3 }] {
                let mut m = Machine::new(MachineConfig::default());
                let cfg = scheme
                    .stm_config(Granularity::CacheLine, 1)
                    .with_versioning(versioning);
                let rt = StmRuntime::new(&mut m, cfg);
                let lock = SpinLock::alloc(rt.heap());
                let (v, _) = m.run_one(|cpu| {
                    let mut ex = ThreadExec::new(scheme, &rt, cpu, lock);
                    let o = ex.alloc_obj(1);
                    ex.atomic(|ctx| ctx.ctx_write(o, 0, 7));
                    ex.atomic_ro(|ctx| ctx.ctx_read(o, 0))
                });
                assert_eq!(v, 7, "scheme {scheme} versioning {versioning:?}");
                if scheme.is_stm_based() && versioning.is_multi() {
                    // The read-only region must have taken the snapshot
                    // path, not a plain transaction.
                    let mut m2 = Machine::new(MachineConfig::default());
                    let rt2 = StmRuntime::new(
                        &mut m2,
                        scheme
                            .stm_config(Granularity::CacheLine, 1)
                            .with_versioning(versioning),
                    );
                    let lock2 = SpinLock::alloc(rt2.heap());
                    m2.run_one(|cpu| {
                        let mut ex = ThreadExec::new(scheme, &rt2, cpu, lock2);
                        let o = ex.alloc_obj(1);
                        ex.atomic(|ctx| ctx.ctx_write(o, 0, 7));
                        ex.atomic_ro(|ctx| ctx.ctx_read(o, 0));
                        let s = ex.txn_stats().expect("stm stats");
                        assert_eq!(s.ro_commits, 1, "scheme {scheme}");
                        assert_eq!(s.ro_aborts, 0, "scheme {scheme}");
                    });
                }
            }
        }
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<_> = Scheme::ALL.iter().map(|s| s.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Scheme::ALL.len());
    }
}
