//! A chained hash table over simulated memory.
//!
//! The paper's hashtable workload: low contention, but also low intra-
//! transaction cache reuse ("the hashing function spreads nodes across
//! buckets, so traversing a single bucket leads to poor cache behavior",
//! §7.3) — so HASTM's benefit here comes from read-log elimination and
//! validation optimization, not from barrier filtering.
//!
//! Layout: the bucket array is one object whose data words are bucket head
//! pointers; each node is an object `[key, value, next]`.

use hastm::{ObjRef, TmContext, TxResult};
use hastm_sim::Addr;

use crate::map::TxMap;

const KEY: u32 = 0;
const VALUE: u32 = 1;
const NEXT: u32 = 2;

/// A fixed-bucket chained hash table.
#[derive(Copy, Clone, Debug)]
pub struct HashTable {
    buckets_obj: ObjRef,
    nbuckets: u32,
}

/// Mixes a key into a bucket index (splitmix64 finalizer).
fn mix(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl HashTable {
    /// Creates a table with `nbuckets` chains (all empty).
    pub fn create(ctx: &mut dyn TmContext, nbuckets: u32) -> Self {
        assert!(nbuckets > 0);
        let buckets_obj = ctx.ctx_alloc(nbuckets);
        // Fresh objects are zero-filled (null heads) by the simulator.
        HashTable {
            buckets_obj,
            nbuckets,
        }
    }

    fn bucket_of(&self, key: u64) -> u32 {
        (mix(key) % self.nbuckets as u64) as u32
    }

    /// Finds `(prev, node)` for `key` in its chain; `prev` is `NULL` when
    /// the node is the head.
    fn find(&self, ctx: &mut dyn TmContext, key: u64) -> TxResult<(ObjRef, ObjRef, u32)> {
        let b = self.bucket_of(key);
        let mut prev = ObjRef::NULL;
        ctx.ctx_work(6); // hash + bucket address computation
        let mut node = ObjRef(Addr(ctx.ctx_read(self.buckets_obj, b)?));
        while !node.is_null() {
            ctx.ctx_work(4); // key compare + branch + pointer chase
            if ctx.ctx_read(node, KEY)? == key {
                return Ok((prev, node, b));
            }
            prev = node;
            node = ObjRef(Addr(ctx.ctx_read(node, NEXT)?));
        }
        Ok((prev, ObjRef::NULL, b))
    }
}

impl TxMap for HashTable {
    fn insert(&self, ctx: &mut dyn TmContext, key: u64, value: u64) -> TxResult<bool> {
        let (_, node, b) = self.find(ctx, key)?;
        if !node.is_null() {
            ctx.ctx_write(node, VALUE, value)?;
            return Ok(false);
        }
        let head = ctx.ctx_read(self.buckets_obj, b)?;
        let new = ctx.ctx_alloc(3);
        ctx.ctx_write(new, KEY, key)?;
        ctx.ctx_write(new, VALUE, value)?;
        ctx.ctx_write(new, NEXT, head)?;
        ctx.ctx_write(self.buckets_obj, b, new.0 .0)?;
        Ok(true)
    }

    fn remove(&self, ctx: &mut dyn TmContext, key: u64) -> TxResult<bool> {
        let (prev, node, b) = self.find(ctx, key)?;
        if node.is_null() {
            return Ok(false);
        }
        let next = ctx.ctx_read(node, NEXT)?;
        if prev.is_null() {
            ctx.ctx_write(self.buckets_obj, b, next)?;
        } else {
            ctx.ctx_write(prev, NEXT, next)?;
        }
        Ok(true)
    }

    fn get(&self, ctx: &mut dyn TmContext, key: u64) -> TxResult<Option<u64>> {
        let (_, node, _) = self.find(ctx, key)?;
        if node.is_null() {
            Ok(None)
        } else {
            Ok(Some(ctx.ctx_read(node, VALUE)?))
        }
    }

    fn len(&self, ctx: &mut dyn TmContext) -> TxResult<u64> {
        let mut n = 0;
        for b in 0..self.nbuckets {
            let mut node = ObjRef(Addr(ctx.ctx_read(self.buckets_obj, b)?));
            while !node.is_null() {
                n += 1;
                node = ObjRef(Addr(ctx.ctx_read(node, NEXT)?));
            }
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::check_against_reference;
    use hastm::{Granularity, StmConfig, StmRuntime, TxThread};
    use hastm_sim::{Machine, MachineConfig};

    fn with_table<R: Send>(
        config: StmConfig,
        nbuckets: u32,
        f: impl FnOnce(&mut TxThread<'_, '_>, HashTable) -> R + Send,
    ) -> R {
        let mut m = Machine::new(MachineConfig::default());
        let rt = StmRuntime::new(&mut m, config);
        m.run_one(|cpu| {
            let mut tx = TxThread::new(&rt, cpu);
            let table = tx.atomic(|tx| Ok(HashTable::create(tx, nbuckets)));
            f(&mut tx, table)
        })
        .0
    }

    #[test]
    fn insert_get_remove() {
        with_table(StmConfig::stm(Granularity::CacheLine), 16, |tx, t| {
            tx.atomic(|tx| {
                assert!(t.insert(tx, 1, 10)?);
                assert!(t.insert(tx, 2, 20)?);
                assert!(!t.insert(tx, 1, 11)?, "overwrite returns false");
                assert_eq!(t.get(tx, 1)?, Some(11));
                assert_eq!(t.get(tx, 2)?, Some(20));
                assert_eq!(t.get(tx, 3)?, None);
                assert!(t.remove(tx, 1)?);
                assert!(!t.remove(tx, 1)?);
                assert_eq!(t.get(tx, 1)?, None);
                assert_eq!(t.len(tx)?, 1);
                Ok(())
            });
        });
    }

    #[test]
    fn chains_handle_collisions() {
        // One bucket forces every key into the same chain.
        with_table(StmConfig::stm(Granularity::CacheLine), 1, |tx, t| {
            tx.atomic(|tx| {
                for k in 0..20 {
                    assert!(t.insert(tx, k, k * 2)?);
                }
                for k in 0..20 {
                    assert_eq!(t.get(tx, k)?, Some(k * 2));
                }
                // Remove middle, head, and tail of the chain.
                assert!(t.remove(tx, 10)?);
                assert!(t.remove(tx, 19)?);
                assert!(t.remove(tx, 0)?);
                assert_eq!(t.len(tx)?, 17);
                assert_eq!(t.get(tx, 10)?, None);
                assert_eq!(t.get(tx, 11)?, Some(22));
                Ok(())
            });
        });
    }

    #[test]
    fn matches_reference_model() {
        for cfg in [
            StmConfig::stm(Granularity::CacheLine),
            StmConfig::hastm_cautious(Granularity::Object),
        ] {
            with_table(cfg, 8, |tx, t| {
                // Deterministic pseudo-random op stream.
                let mut x = 42u64;
                let ops: Vec<(u8, u64)> = (0..300)
                    .map(|_| {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        ((x >> 8) as u8, x % 32)
                    })
                    .collect();
                tx.atomic(|tx| {
                    check_against_reference(&t, tx, &ops);
                    Ok(())
                });
            });
        }
    }
}
