//! The native transactional heap: a flat array of host `AtomicU64` words
//! addressed by the same byte addresses ([`hastm_sim::Addr`]) the
//! simulator uses, so `ObjRef`-based data structures traverse unchanged.
//!
//! Word 0 (byte address 0) is never handed out: `Addr::NULL`/`ObjRef::NULL`
//! must stay distinguishable from a real allocation, exactly as on the
//! simulated heap.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::SeqCst};

/// First allocatable word index (keeps a full line clear of `Addr::NULL`).
const FIRST_WORD: usize = 8;

/// A shared, concurrently allocatable word heap.
pub struct NativeHeap {
    words: Box<[AtomicU64]>,
    next: AtomicUsize,
}

impl NativeHeap {
    /// Builds a zero-initialized heap of `words` 8-byte words.
    ///
    /// # Panics
    ///
    /// Panics if `words` is too small to hold the reserved null region.
    pub fn new(words: usize) -> Self {
        assert!(
            words > FIRST_WORD,
            "native heap of {words} words is too small"
        );
        let cells: Vec<AtomicU64> = (0..words).map(|_| AtomicU64::new(0)).collect();
        NativeHeap {
            words: cells.into_boxed_slice(),
            next: AtomicUsize::new(FIRST_WORD),
        }
    }

    /// Allocates `n` contiguous words and returns the byte address of the
    /// first (a lock-free bump allocation; transactional allocations are
    /// never reclaimed, matching the harness lifetimes this backend
    /// serves).
    ///
    /// # Panics
    ///
    /// Panics when the heap is exhausted — a configuration error, not a
    /// recoverable condition, for a differential-testing backend.
    pub fn alloc_words(&self, n: usize) -> u64 {
        let start = self.next.fetch_add(n, SeqCst);
        assert!(
            start.checked_add(n).is_some_and(|end| end <= self.words.len()),
            "native heap exhausted: {n} words requested, {} of {} used (raise NativeConfig::heap_words)",
            start,
            self.words.len()
        );
        (start as u64) << 3
    }

    fn index(&self, byte: u64) -> usize {
        debug_assert_eq!(byte & 7, 0, "misaligned native word address {byte:#x}");
        let i = (byte >> 3) as usize;
        assert!(
            i < self.words.len(),
            "address {byte:#x} is outside the native heap ({} words)",
            self.words.len()
        );
        i
    }

    /// Atomically loads the word at byte address `byte`.
    pub fn load(&self, byte: u64) -> u64 {
        self.words[self.index(byte)].load(SeqCst)
    }

    /// Atomically stores the word at byte address `byte`.
    pub fn store(&self, byte: u64, value: u64) {
        self.words[self.index(byte)].store(value, SeqCst);
    }

    /// Words handed out so far (including the reserved null region).
    pub fn used_words(&self) -> usize {
        self.next.load(SeqCst).min(self.words.len())
    }

    /// Total capacity in words.
    pub fn capacity_words(&self) -> usize {
        self.words.len()
    }
}

impl std::fmt::Debug for NativeHeap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NativeHeap")
            .field("capacity_words", &self.words.len())
            .field("used_words", &self.used_words())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_never_return_null_and_do_not_overlap() {
        let heap = NativeHeap::new(64);
        let a = heap.alloc_words(4);
        let b = heap.alloc_words(2);
        assert!(a >= (FIRST_WORD as u64) << 3, "null line stays reserved");
        assert_eq!(b, a + 4 * 8, "bump allocation is contiguous");
        heap.store(a, 7);
        heap.store(b, 9);
        assert_eq!(heap.load(a), 7);
        assert_eq!(heap.load(b), 9);
    }

    #[test]
    fn concurrent_allocations_are_disjoint() {
        let heap = NativeHeap::new(4096);
        let mut starts: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| (0..32).map(|_| heap.alloc_words(3)).collect::<Vec<u64>>()))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        starts.sort_unstable();
        for pair in starts.windows(2) {
            assert!(pair[1] - pair[0] >= 3 * 8, "overlapping allocations");
        }
    }

    #[test]
    #[should_panic(expected = "native heap exhausted")]
    fn exhaustion_panics() {
        let heap = NativeHeap::new(16);
        heap.alloc_words(1000);
    }
}
