//! Per-thread execution: [`NativeExec`] (the host-thread analog of the
//! simulator executors, with the retry loop and the mark-bit filter
//! state) and [`NativeTxn`] (one transaction attempt, implementing
//! [`TmContext`] so the unmodified data structures run on it).
//!
//! ## Why the filter is sound
//!
//! A fast-path read returns `load(value); load(epoch)` with no sandwich
//! and no read-set entry, accepted iff the stripe is in the thread's
//! filter and the epoch equals the filter's epoch. The argument that the
//! resulting transaction is serializable at its commit point:
//!
//! * The epoch is bumped by every writing commit *after* validation and
//!   *before* its first store (all `SeqCst`). So if a reader observes
//!   `epoch == filter_epoch`, no store of any commit later than the
//!   filter's establishment can have been visible to the preceding value
//!   load — memory is frozen since the filter window opened.
//! * Slow reads are individually validated against `rv` at read time and
//!   revalidated (version ≤ `rv`, not locked by others) at commit, so
//!   their stripes are unchanged from `rv` through commit.
//! * A transaction that used the fast path anchors itself to the epoch of
//!   its *first* fast read (`fast_epoch`) and must still be in that
//!   window when it commits. Writers check this *atomically with the
//!   epoch bump*: the bump's `fetch_add` returns the pre-bump epoch, and
//!   commit aborts (before any store) unless it equals `fast_epoch` — a
//!   separate load-then-bump would leave a gap for another writer to
//!   validate, bump, and write back a fast-read stripe in between, after
//!   which this commit would publish against a stale snapshot (a G2
//!   anomaly). Read-only transactions check `epoch == fast_epoch` as
//!   their entire commit; the load *is* their commit point, so no gap
//!   exists to race into. Success means no writing commit landed between
//!   the anchor window and this commit, so every fast-read value still
//!   equals memory at the commit point; the slow-read stripes are
//!   unchanged from `rv` through commit and so also equal memory at the
//!   commit point. The whole read snapshot is the committed state at one
//!   instant — the transaction serializes there. The anchor must be the
//!   first fast read's window, not the current `filter_epoch`: a later
//!   slow read may *rebase* the filter to a newer window, and checking
//!   against the rebased epoch would launder fast reads taken before an
//!   intervening commit.
//!
//! The `seeded-bug` cargo feature removes exactly these epoch checks;
//! `tests/filter_stress.rs` proves the resulting stale-filter reads are
//! caught by the stress suite.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering::SeqCst};
use std::sync::Arc;

use hastm::phase::refresh_view;
use hastm::{Abort, Mode, ObjRef, Phase, PhaseEvent, SharedModeState, TmContext, TmExec, TxResult};

use crate::tl2::{NativeRuntime, NativeStats};

/// `false` only under the `seeded-bug` mutation: the filter fast path
/// and commit skip their epoch checks, silently trusting stale filters.
const EPOCH_CHECKS: bool = cfg!(not(feature = "seeded-bug"));

/// Source of serial-token owner ids: one per executor, low bit set so an
/// id can never collide with the token's "free" value (0).
static NEXT_TOKEN_ID: AtomicU64 = AtomicU64::new(0);

/// How one attempt entered the global phase gate.
enum PhaseEntry {
    /// No phase controller configured on the runtime.
    Unphased,
    /// CASed into the active window; carries the phase entered under.
    Optimistic(Phase),
    /// Holds the serial token with the active window drained to zero.
    Serial,
}

/// One host thread's executor over a shared [`NativeRuntime`].
pub struct NativeExec<'r> {
    rt: &'r NativeRuntime,
    /// Stripes read while the epoch was exactly `filter_epoch`.
    filter: HashSet<usize>,
    filter_epoch: u64,
    stats: NativeStats,
    backoff: u64,
    /// This executor's live-snapshot registry slot (`u64::MAX` when no
    /// `atomic_ro` region is running), lazily registered with the
    /// runtime on the first read-only region.
    ro_slot: Option<Arc<AtomicU64>>,
    /// This executor's serial-token owner id (always odd, never 0).
    token_id: u64,
    /// Whether the current attempt may serve reads from the filter fast
    /// path. Always `true` unphased; under a phase controller the
    /// `Cautious` phase (and post-budget `Hw` re-executions) clear it, so
    /// every read takes the fully validated slow path.
    fast_path_ok: bool,
}

impl<'r> NativeExec<'r> {
    /// Builds an executor for the current thread.
    pub fn new(rt: &'r NativeRuntime) -> Self {
        NativeExec {
            rt,
            filter: HashSet::new(),
            filter_epoch: 0,
            stats: NativeStats::default(),
            backoff: 0x9e37_79b9_7f4a_7c15,
            ro_slot: None,
            token_id: (NEXT_TOKEN_ID.fetch_add(1, SeqCst) << 1) | 1,
            fast_path_ok: true,
        }
    }

    /// The shared runtime.
    pub fn runtime(&self) -> &'r NativeRuntime {
        self.rt
    }

    /// This thread's counters so far.
    pub fn stats(&self) -> &NativeStats {
        &self.stats
    }

    /// Begins one explicit transaction attempt. Most callers want
    /// [`TmExec::atomic`]; the explicit form exists for the protocol
    /// property tests, which need to interleave attempts by hand.
    pub fn txn(&mut self) -> NativeTxn<'_, 'r> {
        let rv = self.rt.read_version();
        NativeTxn {
            exec: self,
            rv,
            reads: Vec::new(),
            writes: HashMap::new(),
            fast_epoch: None,
        }
    }

    /// This executor's live-snapshot registry slot, registering with the
    /// runtime on first use.
    fn ro_slot(&mut self) -> Arc<AtomicU64> {
        if self.ro_slot.is_none() {
            self.ro_slot = Some(self.rt.register_ro_slot());
        }
        Arc::clone(self.ro_slot.as_ref().expect("just registered"))
    }

    /// Enters the global phase gate for one attempt — the native twin of
    /// the simulator's gated entry loop, on real `SeqCst` atomics: CAS
    /// into the active window, or, when the published phase is
    /// [`Phase::Serial`], acquire the token and wait for the window to
    /// drain to zero (after which the holder is provably alone).
    fn phase_enter(&mut self) -> PhaseEntry {
        let Some(ps) = self.rt.phase_state() else {
            return PhaseEntry::Unphased;
        };
        let mut seen = ps.word();
        let mut expected = seen;
        let mut spins = 0u32;
        loop {
            if Phase::decode(seen) == Phase::Serial {
                if ps.try_acquire_token(self.token_id) {
                    // The previous holder may have promoted the phase (its
                    // SerialCommit event fires before it releases the
                    // token), so re-verify Serial is still published
                    // before going irrevocable; once it is, no
                    // SerialCommit can promote the phase out from under
                    // this thread (serial commits require the token).
                    let w = ps.word();
                    if Phase::decode(w) != Phase::Serial {
                        ps.release_token(self.token_id);
                        seen = w;
                        expected = w;
                        continue;
                    }
                    while SharedModeState::active_count(ps.word()) > 0 {
                        std::hint::spin_loop();
                    }
                    return PhaseEntry::Serial;
                }
                spins = spins.saturating_add(1);
                if spins > 64 {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
                seen = ps.word();
                expected = seen;
                continue;
            }
            match ps.cas_enter(expected, seen) {
                Ok(p) => return PhaseEntry::Optimistic(p),
                Err(cur) => {
                    expected = cur;
                    seen = refresh_view(seen, cur);
                }
            }
        }
    }

    /// Leaves the optimistic window, feeding the attempt's outcome to the
    /// transition heuristics (when it has one) and counting any phase
    /// transition this thread's event published.
    fn phase_exit(&mut self, ev: Option<PhaseEvent>) {
        let Some(ps) = self.rt.phase_state() else {
            return;
        };
        ps.exit_optimistic();
        if let Some(ev) = ev {
            if ps.on_event(ev).is_some() {
                self.stats.phase_transitions += 1;
            }
        }
    }

    /// Runs one irrevocable attempt under the held serial token: plain
    /// heap reads (checked against the redo buffer for read-after-write),
    /// buffered writes, and a commit with no locks, no validation, and no
    /// abort path. The commit still claims a write version, bumps the
    /// epoch (every filter anchored before it is stale now), publishes
    /// version-ring entries under `Multi`, and advances the written
    /// stripes to `wv`, so it is indistinguishable from an ordinary
    /// commit to every later reader. The token is released on exit — the
    /// `SerialCommit` heuristic event fires *first*, so a successor
    /// re-reading the phase observes any promotion it published.
    fn run_serial<R>(
        &mut self,
        f: &mut impl FnMut(&mut dyn TmContext) -> TxResult<R>,
    ) -> TxResult<R> {
        let rt = self.rt;
        let mut txn = NativeSerialTxn {
            rt,
            writes: HashMap::new(),
        };
        let out = f(&mut txn);
        let ps = rt
            .phase_state()
            .expect("serial attempt without a phase machine");
        match out {
            Ok(r) => {
                let mut entries: Vec<(u64, u64)> = txn.writes.into_iter().collect();
                if !entries.is_empty() {
                    entries.sort_unstable_by_key(|&(addr, _)| addr);
                    let wv = rt.next_write_version();
                    let prev_epoch = rt.bump_epoch();
                    let floor = rt.is_multi().then(|| rt.ro_floor());
                    for &(addr, value) in &entries {
                        if let Some(floor) = floor {
                            let (published, reclaimed) = rt.publish_version(addr, wv, value, floor);
                            self.stats.versions_published += published;
                            self.stats.versions_reclaimed += reclaimed;
                        }
                        rt.heap().store(addr, value);
                    }
                    let mut stripes: Vec<usize> =
                        entries.iter().map(|&(a, _)| rt.stripe_of(a)).collect();
                    stripes.sort_unstable();
                    stripes.dedup();
                    for stripe in stripes {
                        rt.unlock_stripe(stripe, wv);
                    }
                    // Our own filter died with the epoch like everyone
                    // else's.
                    self.filter.clear();
                    self.filter_epoch = prev_epoch + 1;
                }
                self.stats.commits += 1;
                self.stats.serial_commits += 1;
                if ps.on_event(PhaseEvent::SerialCommit).is_some() {
                    self.stats.phase_transitions += 1;
                }
                ps.release_token(self.token_id);
                Ok(r)
            }
            Err(cause) => {
                // Retry (a condition wait): nothing was published, so
                // dropping the redo buffer and releasing the token is a
                // complete rollback.
                ps.release_token(self.token_id);
                Err(cause)
            }
        }
    }

    /// Deterministic-per-thread bounded backoff between attempts.
    fn backoff(&mut self, attempt: u32) {
        self.backoff ^= self.backoff << 13;
        self.backoff ^= self.backoff >> 7;
        self.backoff ^= self.backoff << 17;
        if attempt < 3 {
            for _ in 0..(self.backoff % (8 << attempt)) {
                std::hint::spin_loop();
            }
        } else {
            // On oversubscribed hosts the lock holder needs the core.
            std::thread::yield_now();
        }
    }
}

impl std::fmt::Debug for NativeExec<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NativeExec")
            .field("filter_len", &self.filter.len())
            .field("filter_epoch", &self.filter_epoch)
            .field("stats", &self.stats)
            .finish()
    }
}

impl TmExec for NativeExec<'_> {
    fn atomic<R>(&mut self, mut f: impl FnMut(&mut dyn TmContext) -> TxResult<R>) -> R {
        let mut attempt: u32 = 0;
        loop {
            let entry = self.phase_enter();
            if let PhaseEntry::Serial = entry {
                match self.run_serial(&mut f) {
                    Ok(r) => return r,
                    Err(Abort::Explicit) => {
                        panic!("explicit abort inside atomic (unsupported on the native backend)")
                    }
                    Err(_) => {
                        // Only `retry` reaches here: serial attempts
                        // cannot conflict-abort.
                        std::thread::yield_now();
                        attempt = attempt.saturating_add(1);
                        continue;
                    }
                }
            }
            self.fast_path_ok = match entry {
                PhaseEntry::Optimistic(p) => {
                    let budget = self
                        .rt
                        .config()
                        .phased
                        .map_or(1, |params| params.hw_retry_budget);
                    matches!(p.mode_for(attempt, budget), Mode::Aggressive)
                }
                _ => true,
            };
            let stale_before = self.stats.aborts_filter_stale;
            let mut txn = self.txn();
            let outcome = match f(&mut txn) {
                Ok(r) => txn.commit().map(|()| r),
                Err(cause) => {
                    // Read-time validation failures (the sandwich) never
                    // reach commit(), so they are counted here; commit()
                    // counts only its own commit-time aborts.
                    if matches!(cause, Abort::Conflict) {
                        txn.exec.stats.aborts_conflict += 1;
                    }
                    txn.rollback();
                    Err(cause)
                }
            };
            match outcome {
                Ok(r) => {
                    self.stats.commits += 1;
                    self.phase_exit(Some(PhaseEvent::CleanCommit));
                    return r;
                }
                Err(Abort::Explicit) => {
                    panic!("explicit abort inside atomic (unsupported on the native backend)")
                }
                Err(Abort::Retry) => {
                    self.phase_exit(None);
                    // `retry` condition wait: no condition variables here,
                    // so poll with a yield like the simulator's timed wait.
                    std::thread::yield_now();
                }
                Err(_) => {
                    // A stale-filter abort is capacity pressure (the
                    // spurious-HTM analog); a validation failure is a
                    // true data conflict.
                    let ev = if self.stats.aborts_filter_stale > stale_before {
                        PhaseEvent::CapacityAbort
                    } else {
                        PhaseEvent::ConflictAbort
                    };
                    self.phase_exit(Some(ev));
                }
            }
            attempt = attempt.saturating_add(1);
            self.backoff(attempt);
        }
    }

    fn atomic_ro<R>(&mut self, mut f: impl FnMut(&mut dyn TmContext) -> TxResult<R>) -> R {
        if !self.rt.is_multi() {
            // No version rings under Single: read-only regions run as
            // ordinary (validated, abortable) transactions.
            return self.atomic(f);
        }
        let slot = self.ro_slot();
        loop {
            // Snapshot regions enter the phase gate too: they count into
            // the active window (so the serial drain really means
            // "alone"), and in the serial phase they run irrevocably
            // under the token — mirroring the simulator backend, where a
            // serial read-only begin stays a full transaction.
            let entry = self.phase_enter();
            if let PhaseEntry::Serial = entry {
                match self.run_serial(&mut f) {
                    Ok(r) => return r,
                    Err(Abort::Explicit) => panic!(
                        "explicit abort inside atomic_ro (unsupported on the native backend)"
                    ),
                    Err(_) => {
                        std::thread::yield_now();
                        continue;
                    }
                }
            }
            // Register-then-capture: store a clock lower bound into the
            // live-snapshot slot *first*, then capture `rv` from a second
            // clock load. A pruning scan that saw the store uses a floor
            // <= slot <= rv; one that missed it is covered by the scan's
            // own clock clamp (see `NativeRuntime::ro_floor`). Either
            // way, every version this region can need outlives it.
            slot.store(self.rt.clock(), SeqCst);
            let rv = self.rt.clock();
            let mut txn = NativeRoTxn { exec: self, rv };
            let out = f(&mut txn);
            drop(txn);
            slot.store(u64::MAX, SeqCst);
            match out {
                Ok(r) => {
                    self.stats.ro_commits += 1;
                    self.stats.commits += 1;
                    self.phase_exit(Some(PhaseEvent::CleanCommit));
                    return r;
                }
                Err(Abort::Retry) => {
                    // User condition wait, not a conflict: the snapshot
                    // path itself cannot abort. Counted like the
                    // simulator backend counts it, and fed to no
                    // heuristic (a wait is not an outcome).
                    self.stats.ro_aborts += 1;
                    self.phase_exit(None);
                    std::thread::yield_now();
                }
                Err(Abort::Explicit) => {
                    panic!("explicit abort inside atomic_ro (unsupported on the native backend)")
                }
                Err(cause) => unreachable!("snapshot reads cannot conflict-abort: {cause:?}"),
            }
        }
    }

    fn alloc_obj(&mut self, data_words: u32) -> ObjRef {
        self.rt.alloc_obj(data_words)
    }

    fn clock(&mut self) -> u64 {
        self.rt.nanos()
    }

    fn idle_until(&mut self, tick: u64) {
        loop {
            let now = self.rt.nanos();
            if now >= tick {
                return;
            }
            // Open-loop gaps are typically sub-microsecond, so spin; only
            // yield when the wait is long enough for the OS to matter.
            if tick - now > 100_000 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }
}

/// One transaction attempt on one thread. Dropping it without calling
/// [`NativeTxn::commit`] abandons the attempt (nothing was published).
pub struct NativeTxn<'e, 'r> {
    exec: &'e mut NativeExec<'r>,
    rv: u64,
    /// Stripes read on the slow path (validated again at commit).
    reads: Vec<usize>,
    /// Redo log: byte address → pending value.
    writes: HashMap<u64, u64>,
    /// Epoch window the txn's fast-path reads are anchored to (set by the
    /// first fast read). Commit must observe this exact epoch: fast reads
    /// carry no read-set entry, so "no commit since the window opened" is
    /// their only commit-time revalidation. Anchoring to the *first* fast
    /// read's window — not the possibly-rebased `filter_epoch` — is what
    /// keeps a later slow-read rebase from laundering a stale fast read.
    fast_epoch: Option<u64>,
}

impl NativeTxn<'_, '_> {
    /// The clock snapshot this attempt reads against.
    pub fn read_version(&self) -> u64 {
        self.rv
    }

    /// Whether any read was served by the filter fast path.
    pub fn used_fast_path(&self) -> bool {
        self.fast_epoch.is_some()
    }

    fn read_word_at(&mut self, addr: u64) -> TxResult<u64> {
        if let Some(&buffered) = self.writes.get(&addr) {
            return Ok(buffered);
        }
        let rt = self.exec.rt;
        let stripe = rt.stripe_of(addr);
        let filtered = rt.config().mark_filter
            && self.exec.fast_path_ok
            && self.exec.filter.contains(&stripe);
        if filtered {
            let value = rt.heap().load(addr);
            if !EPOCH_CHECKS {
                self.fast_epoch.get_or_insert(self.exec.filter_epoch);
                self.exec.stats.fast_reads += 1;
                return Ok(value);
            }
            if rt.epoch() != self.exec.filter_epoch {
                // A commit moved the epoch: every filter entry is stale.
                self.exec.filter.clear();
            } else if self
                .fast_epoch
                .is_none_or(|fe| fe == self.exec.filter_epoch)
            {
                self.fast_epoch.get_or_insert(self.exec.filter_epoch);
                self.exec.stats.fast_reads += 1;
                return Ok(value);
            }
            // else: earlier fast reads are anchored to an older window;
            // mixing windows would leave them unvalidatable at commit, so
            // this read takes the slow path (the commit epoch check will
            // settle the older anchors).
        }
        // Slow path: the TL2 lock–load–lock sandwich. `e0` pins the epoch
        // window this read can be filed under; it must be taken before
        // the value load (filing the read under a *later* window would
        // let the fast path treat pre-window values as current).
        let e0 = if rt.config().mark_filter {
            rt.epoch()
        } else {
            0
        };
        let v1 = rt.lock_word(stripe);
        if v1 & 1 == 1 || (v1 >> 1) > self.rv {
            return Err(Abort::Conflict);
        }
        let value = rt.heap().load(addr);
        if rt.lock_word(stripe) != v1 {
            return Err(Abort::Conflict);
        }
        self.reads.push(stripe);
        self.exec.stats.slow_reads += 1;
        if rt.config().mark_filter {
            if self.exec.filter_epoch != e0 {
                self.exec.filter.clear();
                self.exec.filter_epoch = e0;
            }
            // File the stripe only if the window is still open.
            if rt.epoch() == e0 && self.exec.filter.len() < rt.config().filter_capacity {
                self.exec.filter.insert(stripe);
            }
        }
        Ok(value)
    }

    fn write_word_at(&mut self, addr: u64, value: u64) {
        self.writes.insert(addr, value);
    }

    /// Commits the attempt: lock (sorted), claim `wv`, validate reads and
    /// the filter window, bump the epoch, write back, release at `wv`.
    ///
    /// # Errors
    ///
    /// Returns the abort cause; the heap and lock table are untouched by
    /// a failed commit.
    pub fn commit(self) -> TxResult<()> {
        let rt = self.exec.rt;
        if self.writes.is_empty() {
            if EPOCH_CHECKS && self.fast_epoch.is_some_and(|fe| rt.epoch() != fe) {
                self.exec.filter.clear();
                self.exec.stats.aborts_filter_stale += 1;
                return Err(Abort::Conflict);
            }
            return Ok(());
        }

        // Deterministic ascending lock order forbids lock-order cycles.
        let mut entries: Vec<(u64, u64)> = self.writes.iter().map(|(&a, &v)| (a, v)).collect();
        entries.sort_unstable_by_key(|&(addr, _)| addr);
        let mut write_stripes: Vec<usize> = entries
            .iter()
            .map(|&(addr, _)| rt.stripe_of(addr))
            .collect();
        write_stripes.sort_unstable();
        write_stripes.dedup();

        let mut locked: Vec<(usize, u64)> = Vec::with_capacity(write_stripes.len());
        let release = |locked: &[(usize, u64)]| {
            for &(stripe, version) in locked {
                rt.unlock_stripe(stripe, version);
            }
        };
        for &stripe in &write_stripes {
            match rt.try_lock_stripe(stripe) {
                // A write-only stripe whose version moved past rv is fine:
                // TL2 permits the blind overwrite. Stripes we also *read*
                // are validated against rv below using the pre-lock version.
                Some(pre_version) => locked.push((stripe, pre_version)),
                None => {
                    release(&locked);
                    self.exec.stats.aborts_conflict += 1;
                    return Err(Abort::Conflict);
                }
            }
        }

        let wv = rt.next_write_version();

        // Revalidate every slow read: unchanged since rv and not locked
        // by anyone else (our own write locks are fine).
        for &stripe in &self.reads {
            let raw = rt.lock_word(stripe);
            let locked_by_other = raw & 1 == 1 && write_stripes.binary_search(&stripe).is_err();
            let version = if write_stripes.binary_search(&stripe).is_ok() {
                // We hold it: the pre-lock version is what matters.
                locked
                    .iter()
                    .find(|&&(s, _)| s == stripe)
                    .map_or(raw >> 1, |&(_, pre)| pre)
            } else {
                raw >> 1
            };
            if locked_by_other || version > self.rv {
                release(&locked);
                self.exec.stats.aborts_conflict += 1;
                return Err(Abort::Conflict);
            }
        }
        // Advisory early-out on an already-stale anchor: cheaper than the
        // authoritative check below (no spurious epoch bump to invalidate
        // other threads' filters), but a plain load — a racing committer
        // can still slip in after it, so it decides nothing on its own.
        if EPOCH_CHECKS && self.fast_epoch.is_some_and(|fe| rt.epoch() != fe) {
            release(&locked);
            self.exec.filter.clear();
            self.exec.stats.aborts_filter_stale += 1;
            return Err(Abort::Conflict);
        }

        // Publish: epoch first (fast-path readers must never observe a
        // store from this commit under the old epoch), then write back
        // under the held locks, then release at wv. The fetch_add's
        // return value doubles as the *authoritative* fast-read
        // revalidation: `prev_epoch == fast_epoch` means no writing
        // commit anywhere landed between the anchor window opening and
        // this commit claiming publication — checked and bumped in one
        // atomic step, so no commit can slide into a gap between them.
        let prev_epoch = rt.bump_epoch();
        if EPOCH_CHECKS && self.fast_epoch.is_some_and(|fe| prev_epoch != fe) {
            // Nothing has been stored yet, so aborting is still safe;
            // the wasted bump only costs other threads their filters.
            release(&locked);
            self.exec.filter.clear();
            self.exec.stats.aborts_filter_stale += 1;
            return Err(Abort::Conflict);
        }
        let hook = rt.writeback_hook();
        if let Some(h) = &hook {
            h(0, entries.len());
        }
        // Under Multi, each word's (wv, value) is published into its
        // version ring *before* the store (the ring seed reads the
        // pre-image from the heap), all while the stripe locks are held —
        // snapshot readers never observe a stored value whose version is
        // missing from the ring.
        let floor = rt.is_multi().then(|| rt.ro_floor());
        for (done, &(addr, value)) in entries.iter().enumerate() {
            if let Some(floor) = floor {
                let (published, reclaimed) = rt.publish_version(addr, wv, value, floor);
                self.exec.stats.versions_published += published;
                self.exec.stats.versions_reclaimed += reclaimed;
            }
            rt.heap().store(addr, value);
            if let Some(h) = &hook {
                h(done + 1, entries.len());
            }
        }
        for &(stripe, _) in &locked {
            rt.unlock_stripe(stripe, wv);
        }

        // Filter upkeep: if no other commit intervened since the filter
        // window opened, the window simply advances over our own commit —
        // the filter (plus our written stripes) stays valid. This is the
        // native analog of mark bits surviving the thread's own commits.
        if rt.config().mark_filter {
            if EPOCH_CHECKS && prev_epoch == self.exec.filter_epoch {
                self.exec.filter_epoch = prev_epoch + 1;
                for &stripe in &write_stripes {
                    if self.exec.filter.len() >= rt.config().filter_capacity {
                        break;
                    }
                    self.exec.filter.insert(stripe);
                }
                self.exec.stats.filter_retained += 1;
            } else if EPOCH_CHECKS {
                self.exec.filter.clear();
                self.exec.filter_epoch = prev_epoch + 1;
            }
        }
        Ok(())
    }

    /// Abandons the attempt (nothing was published, so this only drops
    /// the logs).
    pub fn rollback(self) {
        drop(self);
    }
}

impl TmContext for NativeTxn<'_, '_> {
    fn ctx_read(&mut self, obj: ObjRef, index: u32) -> TxResult<u64> {
        self.read_word_at(obj.word(index).0)
    }

    fn ctx_write(&mut self, obj: ObjRef, index: u32, value: u64) -> TxResult<()> {
        self.write_word_at(obj.word(index).0, value);
        Ok(())
    }

    fn ctx_alloc(&mut self, data_words: u32) -> ObjRef {
        // Bump allocation straight from the shared heap; an abort leaks
        // the object, which is fine for a testing/benchmark backend (the
        // simulator's GC story has no native analog here).
        self.exec.rt.alloc_obj(data_words)
    }

    fn ctx_guard(&mut self) -> TxResult<()> {
        // TL2 reads are opaque (each is validated against rv when served),
        // so a doomed transaction can never observe an inconsistent
        // snapshot; there is nothing to revalidate mid-flight.
        Ok(())
    }

    fn ctx_work(&mut self, cycles: u64) {
        // Keep relative app-work costs present (the cycle counts are
        // small per-op constants) without a simulated clock: one spin per
        // simulated cycle.
        for _ in 0..cycles {
            std::hint::spin_loop();
        }
    }
}

impl std::fmt::Debug for NativeTxn<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NativeTxn")
            .field("rv", &self.rv)
            .field("reads", &self.reads.len())
            .field("writes", &self.writes.len())
            .field("fast_epoch", &self.fast_epoch)
            .finish()
    }
}

/// One irrevocable (serial-phase) attempt: the token holder is provably
/// alone — the active window drained to zero before it started — so
/// reads are plain heap loads (checked against the redo buffer first for
/// read-after-write), writes buffer into the redo log, and the commit in
/// [`NativeExec`]'s serial path publishes with no locks, no validation,
/// and no abort path.
struct NativeSerialTxn<'r> {
    rt: &'r NativeRuntime,
    writes: HashMap<u64, u64>,
}

impl TmContext for NativeSerialTxn<'_> {
    fn ctx_read(&mut self, obj: ObjRef, index: u32) -> TxResult<u64> {
        let addr = obj.word(index).0;
        Ok(self
            .writes
            .get(&addr)
            .copied()
            .unwrap_or_else(|| self.rt.heap().load(addr)))
    }

    fn ctx_write(&mut self, obj: ObjRef, index: u32, value: u64) -> TxResult<()> {
        self.writes.insert(obj.word(index).0, value);
        Ok(())
    }

    fn ctx_alloc(&mut self, data_words: u32) -> ObjRef {
        self.rt.alloc_obj(data_words)
    }

    fn ctx_guard(&mut self) -> TxResult<()> {
        // Irrevocable: the snapshot is memory itself, never inconsistent.
        Ok(())
    }

    fn ctx_work(&mut self, cycles: u64) {
        for _ in 0..cycles {
            std::hint::spin_loop();
        }
    }
}

impl std::fmt::Debug for NativeSerialTxn<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NativeSerialTxn")
            .field("writes", &self.writes.len())
            .finish()
    }
}

/// One read-only snapshot region (only under
/// [`hastm::Versioning::Multi`]): reads resolve at the region's `rv`
/// from the version rings — no lock–load–lock sandwich, no read set, no
/// commit-time validation — so the region cannot conflict-abort, no
/// matter how many writers race it.
pub struct NativeRoTxn<'e, 'r> {
    exec: &'e mut NativeExec<'r>,
    rv: u64,
}

impl NativeRoTxn<'_, '_> {
    /// The clock snapshot this region reads at.
    pub fn read_version(&self) -> u64 {
        self.rv
    }

    fn snapshot_read_at(&mut self, addr: u64) -> u64 {
        let rt = self.exec.rt;
        let stripe = rt.stripe_of(addr);
        // Wait out committing writers: once the stripe is observed
        // unlocked, every commit to it with wv <= rv has fully published
        // its ring entries (writers lock stripes before claiming wv, so
        // any later locker's wv exceeds our rv — its entries are newer
        // than the snapshot and harmless).
        loop {
            if rt.lock_word(stripe) & 1 == 0 {
                break;
            }
            std::hint::spin_loop();
        }
        self.exec.stats.snapshot_reads += 1;
        if let Some(value) = rt.snapshot_lookup(addr, self.rv) {
            return value;
        }
        // Ring miss: no commit has ever (transactionally) written this
        // word, so the heap holds its frozen pre-transactional value.
        // A first writer racing us is caught by re-checking the ring
        // *after* the load: publication precedes the store under the
        // shard mutex, so "still no ring after the load" proves the load
        // preceded any store, and "ring now" means the seed (version 0,
        // the pre-image) or a ring entry serves rv exactly.
        let value = rt.heap().load(addr);
        match rt.snapshot_lookup(addr, self.rv) {
            None => value,
            Some(published) => published,
        }
    }
}

impl TmContext for NativeRoTxn<'_, '_> {
    fn ctx_read(&mut self, obj: ObjRef, index: u32) -> TxResult<u64> {
        Ok(self.snapshot_read_at(obj.word(index).0))
    }

    fn ctx_write(&mut self, obj: ObjRef, index: u32, value: u64) -> TxResult<()> {
        let _ = (obj, index, value);
        panic!("transactional write inside an atomic_ro (read-only) region")
    }

    fn ctx_alloc(&mut self, data_words: u32) -> ObjRef {
        self.exec.rt.alloc_obj(data_words)
    }

    fn ctx_guard(&mut self) -> TxResult<()> {
        // The snapshot is consistent by construction; nothing to
        // revalidate and no way to be doomed.
        Ok(())
    }

    fn ctx_work(&mut self, cycles: u64) {
        for _ in 0..cycles {
            std::hint::spin_loop();
        }
    }
}

impl std::fmt::Debug for NativeRoTxn<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NativeRoTxn").field("rv", &self.rv).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tl2::NativeConfig;

    fn small_rt(mark_filter: bool) -> NativeRuntime {
        NativeRuntime::new(NativeConfig {
            heap_words: 1 << 12,
            stripes: 1 << 8,
            mark_filter,
            ..NativeConfig::default()
        })
    }

    #[test]
    fn read_write_commit_roundtrip() {
        for filter in [false, true] {
            let rt = small_rt(filter);
            let mut ex = NativeExec::new(&rt);
            let o = ex.alloc_obj(2);
            ex.atomic(|ctx| {
                ctx.ctx_write(o, 0, 41)?;
                ctx.ctx_write(o, 1, 1)
            });
            let v = ex.atomic(|ctx| {
                let a = ctx.ctx_read(o, 0)?;
                let b = ctx.ctx_read(o, 1)?;
                Ok(a + b)
            });
            assert_eq!(v, 42, "filter={filter}");
            assert_eq!(ex.stats().commits, 2);
        }
    }

    #[test]
    fn buffered_writes_are_invisible_until_commit_and_read_back() {
        let rt = small_rt(true);
        let mut ex = NativeExec::new(&rt);
        let o = ex.alloc_obj(1);
        ex.atomic(|ctx| {
            ctx.ctx_write(o, 0, 9)?;
            assert_eq!(rt.peek(o.word(0)), 0, "redo log defers the store");
            assert_eq!(ctx.ctx_read(o, 0)?, 9, "reads see own writes");
            Ok(())
        });
        assert_eq!(rt.peek(o.word(0)), 9, "commit wrote back");
    }

    #[test]
    fn filter_serves_repeat_reads_and_survives_own_commits() {
        let rt = small_rt(true);
        let mut ex = NativeExec::new(&rt);
        let o = ex.alloc_obj(1);
        ex.atomic(|ctx| ctx.ctx_write(o, 0, 1));
        for i in 2..10u64 {
            ex.atomic(|ctx| {
                let v = ctx.ctx_read(o, 0)?;
                ctx.ctx_write(o, 0, v + 1)
            });
            assert_eq!(rt.peek(o.word(0)), i);
        }
        assert!(
            ex.stats().fast_reads >= 7,
            "single-thread reuse must hit the fast path: {:?}",
            ex.stats()
        );
        assert!(ex.stats().filter_retained >= 7, "{:?}", ex.stats());
    }

    #[test]
    fn no_filter_config_never_fast_paths() {
        let rt = small_rt(false);
        let mut ex = NativeExec::new(&rt);
        let o = ex.alloc_obj(1);
        for _ in 0..8 {
            ex.atomic(|ctx| {
                let v = ctx.ctx_read(o, 0)?;
                ctx.ctx_write(o, 0, v + 1)
            });
        }
        assert_eq!(ex.stats().fast_reads, 0);
        assert_eq!(rt.peek(o.word(0)), 8);
    }

    #[test]
    fn stale_fast_anchor_aborts_writer_commit() {
        let rt = small_rt(true);
        let mut a = NativeExec::new(&rt);
        let mut b = NativeExec::new(&rt);
        let x = a.alloc_obj(1);
        let y = a.alloc_obj(1);
        a.atomic(|ctx| {
            ctx.ctx_write(x, 0, 5)?;
            ctx.ctx_write(y, 0, 0)
        });
        // Warm A's filter on x (read-only commit keeps the filter).
        a.atomic(|ctx| ctx.ctx_read(x, 0).map(|_| ()));

        let mut txn = a.txn();
        let rx = txn.ctx_read(x, 0).unwrap();
        assert_eq!(rx, 5);
        assert!(txn.used_fast_path(), "warmed stripe must fast-path");
        txn.ctx_write(y, 0, rx + 1).unwrap();

        // B commits a write to x — the anchor window is gone, so A's
        // fast-read value is stale and its commit must refuse.
        b.atomic(|ctx| ctx.ctx_write(x, 0, 7));
        assert_eq!(txn.commit(), Err(Abort::Conflict));
        assert_eq!(a.stats().aborts_filter_stale, 1, "{:?}", a.stats());
        assert_eq!(rt.peek(y.word(0)), 0, "refused commit must not publish");
    }

    #[test]
    fn read_time_conflicts_are_counted() {
        let rt = small_rt(false);
        let mut setup = NativeExec::new(&rt);
        let o = setup.alloc_obj(1);
        setup.atomic(|ctx| ctx.ctx_write(o, 0, 1));
        let stripe = rt.stripe_of(o.word(0).0);

        let mut ex = NativeExec::new(&rt);
        let pre = rt.debug_lock_stripe(stripe).expect("unlocked");
        let mut first_try = true;
        let v = ex.atomic(|ctx| {
            if first_try {
                first_try = false;
                let err = ctx.ctx_read(o, 0).unwrap_err();
                // Surface the read-time conflict through the retry loop,
                // then unblock the stripe for the second attempt.
                rt.debug_unlock_stripe(stripe, pre);
                return Err(err);
            }
            ctx.ctx_read(o, 0)
        });
        assert_eq!(v, 1);
        assert_eq!(
            ex.stats().aborts_conflict,
            1,
            "read-time abort must be counted: {:?}",
            ex.stats()
        );
    }

    fn multi_rt(k: usize) -> NativeRuntime {
        NativeRuntime::new(NativeConfig {
            heap_words: 1 << 12,
            stripes: 1 << 8,
            versioning: hastm::Versioning::Multi { k },
            ..NativeConfig::default()
        })
    }

    #[test]
    fn atomic_ro_reads_committed_state_and_counts_as_ro_commit() {
        let rt = multi_rt(3);
        let mut ex = NativeExec::new(&rt);
        let o = ex.alloc_obj(2);
        ex.atomic(|ctx| {
            ctx.ctx_write(o, 0, 10)?;
            ctx.ctx_write(o, 1, 32)
        });
        let v = ex.atomic_ro(|ctx| Ok(ctx.ctx_read(o, 0)? + ctx.ctx_read(o, 1)?));
        assert_eq!(v, 42);
        assert_eq!(ex.stats().ro_commits, 1);
        assert_eq!(ex.stats().ro_aborts, 0);
        assert_eq!(ex.stats().snapshot_reads, 2);
    }

    #[test]
    fn atomic_ro_falls_back_to_plain_transactions_under_single() {
        let rt = small_rt(true);
        let mut ex = NativeExec::new(&rt);
        let o = ex.alloc_obj(1);
        ex.atomic(|ctx| ctx.ctx_write(o, 0, 7));
        let v = ex.atomic_ro(|ctx| ctx.ctx_read(o, 0));
        assert_eq!(v, 7);
        assert_eq!(ex.stats().ro_commits, 0, "Single has no snapshot path");
        assert_eq!(ex.stats().snapshot_reads, 0);
    }

    #[test]
    fn snapshot_read_ignores_versions_published_after_rv() {
        let rt = multi_rt(4);
        let mut a = NativeExec::new(&rt);
        let mut b = NativeExec::new(&rt);
        let o = a.alloc_obj(1);
        a.atomic(|ctx| ctx.ctx_write(o, 0, 1));
        // Pin a snapshot by hand (slot + rv), then let B commit past it.
        let slot = a.ro_slot();
        slot.store(rt.clock(), SeqCst);
        let rv = rt.clock();
        b.atomic(|ctx| ctx.ctx_write(o, 0, 2));
        b.atomic(|ctx| ctx.ctx_write(o, 0, 3));
        let mut txn = NativeRoTxn { exec: &mut a, rv };
        assert_eq!(txn.snapshot_read_at(o.word(0).0), 1, "snapshot at rv");
        drop(txn);
        slot.store(u64::MAX, SeqCst);
        assert_eq!(rt.peek(o.word(0)), 3, "memory moved on past the snapshot");
    }

    #[test]
    fn ring_miss_falls_back_to_the_frozen_heap_word() {
        let rt = multi_rt(2);
        let mut ex = NativeExec::new(&rt);
        let o = ex.alloc_obj(1);
        // Never transactionally written: no ring exists.
        assert_eq!(rt.ring_versions(o.word(0)), Vec::<u64>::new());
        let v = ex.atomic_ro(|ctx| ctx.ctx_read(o, 0));
        assert_eq!(v, 0, "frozen pre-transactional value");
    }

    #[test]
    fn rings_seed_pre_image_and_prune_to_depth_without_live_readers() {
        let rt = multi_rt(2);
        let mut ex = NativeExec::new(&rt);
        let o = ex.alloc_obj(1);
        for i in 1..=6u64 {
            ex.atomic(|ctx| ctx.ctx_write(o, 0, i * 10));
        }
        let versions = rt.ring_versions(o.word(0));
        assert_eq!(versions.len(), 2, "pruned to k with no live snapshots");
        assert!(ex.stats().versions_published >= 6, "{:?}", ex.stats());
        assert!(ex.stats().versions_reclaimed >= 4, "{:?}", ex.stats());
    }

    #[test]
    fn live_snapshot_pins_its_versions_past_depth() {
        let rt = multi_rt(1);
        let mut a = NativeExec::new(&rt);
        let mut b = NativeExec::new(&rt);
        let o = a.alloc_obj(1);
        a.atomic(|ctx| ctx.ctx_write(o, 0, 1));
        let slot = a.ro_slot();
        slot.store(rt.clock(), SeqCst);
        let rv = rt.clock();
        for i in 2..=5u64 {
            b.atomic(|ctx| ctx.ctx_write(o, 0, i));
        }
        assert!(
            rt.ring_versions(o.word(0)).len() > 1,
            "pinned snapshot holds history past k=1: {:?}",
            rt.ring_versions(o.word(0))
        );
        let mut txn = NativeRoTxn { exec: &mut a, rv };
        assert_eq!(txn.snapshot_read_at(o.word(0).0), 1);
        drop(txn);
        slot.store(u64::MAX, SeqCst);
        // Next commit prunes with no live readers.
        b.atomic(|ctx| ctx.ctx_write(o, 0, 6));
        assert_eq!(rt.ring_versions(o.word(0)).len(), 1);
    }

    #[test]
    fn concurrent_ro_scans_see_consistent_snapshots_and_never_abort() {
        use std::sync::atomic::AtomicBool;
        let rt = multi_rt(3);
        let mut setup = NativeExec::new(&rt);
        // Zero-sum ledger: writers move value between cells, every
        // snapshot must see the invariant total.
        let cells: Vec<ObjRef> = (0..8).map(|_| setup.alloc_obj(1)).collect();
        setup.atomic(|ctx| {
            for c in &cells {
                ctx.ctx_write(*c, 0, 100)?;
            }
            Ok(())
        });
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            for t in 0..2usize {
                let cells = &cells;
                let stop = &stop;
                let rt = &rt;
                s.spawn(move || {
                    let mut ex = NativeExec::new(rt);
                    let mut i = t;
                    while !stop.load(SeqCst) {
                        let (from, to) = (cells[i % 8], cells[(i + 3) % 8]);
                        ex.atomic(|ctx| {
                            let a = ctx.ctx_read(from, 0)?;
                            let b = ctx.ctx_read(to, 0)?;
                            ctx.ctx_write(from, 0, a.wrapping_sub(1))?;
                            ctx.ctx_write(to, 0, b + 1)
                        });
                        i += 1;
                    }
                });
            }
            let mut ro = NativeExec::new(&rt);
            for _ in 0..300 {
                let total = ro.atomic_ro(|ctx| {
                    let mut sum = 0u64;
                    for c in cells.iter() {
                        sum = sum.wrapping_add(ctx.ctx_read(*c, 0)?);
                    }
                    Ok(sum)
                });
                assert_eq!(total, 800, "snapshot must see the conserved sum");
            }
            assert_eq!(ro.stats().ro_commits, 300);
            assert_eq!(ro.stats().ro_aborts, 0);
            stop.store(true, SeqCst);
        });
    }

    fn phased_rt(params: hastm::PhasedParams, versioning: hastm::Versioning) -> NativeRuntime {
        NativeRuntime::new(NativeConfig {
            heap_words: 1 << 12,
            stripes: 1 << 8,
            versioning,
            phased: Some(params),
            ..NativeConfig::default()
        })
    }

    /// Hair-trigger params: every bad event demotes one level, and the
    /// promote threshold is high enough that `Serial`, once reached,
    /// sticks for the remainder of the run.
    fn hair_trigger() -> hastm::PhasedParams {
        hastm::PhasedParams {
            demote_after: 1,
            promote_after: 1 << 20,
            hysteresis: 1,
            hw_retry_budget: 2,
        }
    }

    #[test]
    fn phased_counter_is_exact_and_reaches_the_serial_phase() {
        let rt = phased_rt(hair_trigger(), hastm::Versioning::Single);
        let mut setup = NativeExec::new(&rt);
        let cell = setup.alloc_obj(1);
        setup.atomic(|ctx| ctx.ctx_write(cell, 0, 0));
        let merged = std::sync::Mutex::new(NativeStats::default());
        let start = std::sync::Barrier::new(4);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let mut ex = NativeExec::new(&rt);
                    start.wait();
                    for _ in 0..2000 {
                        ex.atomic(|ctx| {
                            let v = ctx.ctx_read(cell, 0)?;
                            ctx.ctx_work(50);
                            ctx.ctx_write(cell, 0, v + 1)
                        });
                    }
                    merged.lock().unwrap().merge(ex.stats());
                });
            }
        });
        assert_eq!(rt.peek(cell.word(0)), 4 * 2000, "lost updates under Phased");
        let st = merged.into_inner().unwrap();
        assert_eq!(st.commits, 4 * 2000);
        assert!(st.phase_transitions > 0, "hair-trigger params never moved");
        assert!(
            st.serial_commits > 0,
            "contention never reached the serial phase: {st:?}"
        );
        assert_eq!(
            rt.phase_state().expect("phased runtime").phase(),
            hastm::Phase::Serial,
            "promote_after is unreachable, the scheme must end serial"
        );
    }

    #[test]
    fn phased_snapshot_scans_stay_consistent_through_serial_commits() {
        // Writers demoting the scheme to serial must not tear concurrent
        // snapshot scans: serial commits publish version-ring entries
        // like any other commit.
        let rt = phased_rt(hair_trigger(), hastm::Versioning::Multi { k: 3 });
        let mut setup = NativeExec::new(&rt);
        let cells: Vec<ObjRef> = (0..8).map(|_| setup.alloc_obj(1)).collect();
        setup.atomic(|ctx| {
            for c in &cells {
                ctx.ctx_write(*c, 0, 100)?;
            }
            Ok(())
        });
        use std::sync::atomic::AtomicBool;
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            for t in 0..2usize {
                let (cells, stop, rt) = (&cells, &stop, &rt);
                s.spawn(move || {
                    let mut ex = NativeExec::new(rt);
                    let mut i = t;
                    while !stop.load(SeqCst) {
                        let (from, to) = (cells[i % 8], cells[(i + 3) % 8]);
                        ex.atomic(|ctx| {
                            let a = ctx.ctx_read(from, 0)?;
                            let b = ctx.ctx_read(to, 0)?;
                            ctx.ctx_write(from, 0, a.wrapping_sub(1))?;
                            ctx.ctx_write(to, 0, b + 1)
                        });
                        i += 1;
                    }
                });
            }
            let mut ro = NativeExec::new(&rt);
            for _ in 0..200 {
                let total = ro.atomic_ro(|ctx| {
                    let mut sum = 0u64;
                    for c in cells.iter() {
                        sum = sum.wrapping_add(ctx.ctx_read(*c, 0)?);
                    }
                    Ok(sum)
                });
                assert_eq!(total, 800, "scan tore across a serial commit");
            }
            stop.store(true, SeqCst);
        });
    }

    #[test]
    fn serial_commit_advances_stripes_epoch_and_rings() {
        let rt = phased_rt(hair_trigger(), hastm::Versioning::Multi { k: 2 });
        let ps = rt.phase_state().expect("phased runtime");
        // Force the phase to Serial by hand, then run one transaction.
        while ps.phase() != hastm::Phase::Serial {
            ps.on_event(hastm::PhaseEvent::CapacityAbort);
        }
        let mut ex = NativeExec::new(&rt);
        let o = ex.alloc_obj(1);
        let epoch_before = rt.epoch();
        ex.atomic(|ctx| ctx.ctx_write(o, 0, 99));
        assert_eq!(rt.peek(o.word(0)), 99);
        assert_eq!(ex.stats().serial_commits, 1, "{:?}", ex.stats());
        assert!(rt.epoch() > epoch_before, "serial commit must kill filters");
        let stripe = rt.stripe_of(o.word(0).0);
        let state = rt.stripe_state(stripe);
        assert!(!state.locked);
        assert!(state.version > 0, "stripe version must advance");
        assert!(
            !rt.ring_versions(o.word(0)).is_empty(),
            "serial writes must publish ring history"
        );
        assert_eq!(ps.token_holder(), 0, "token released after commit");
    }

    #[test]
    fn concurrent_counter_loses_no_increments() {
        for filter in [false, true] {
            let rt = small_rt(filter);
            let mut setup = NativeExec::new(&rt);
            let cell = setup.alloc_obj(1);
            setup.atomic(|ctx| ctx.ctx_write(cell, 0, 0));
            std::thread::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| {
                        let mut ex = NativeExec::new(&rt);
                        for _ in 0..500 {
                            ex.atomic(|ctx| {
                                let v = ctx.ctx_read(cell, 0)?;
                                ctx.ctx_write(cell, 0, v + 1)
                            });
                        }
                    });
                }
            });
            assert_eq!(rt.peek(cell.word(0)), 4 * 500, "filter={filter}");
        }
    }
}
