//! # hastm-native — host-thread TL2 backend
//!
//! A second execution backend for the HASTM workloads: instead of the
//! cycle-level simulator, transactions run on **real host threads** over
//! a shared [`NativeHeap`] of `AtomicU64` words, synchronized by a
//! TL2-style timestamp-ordered STM ([Dice, Shalev, Shavit 2006]):
//!
//! * a global version clock ([`NativeRuntime::clock`]),
//! * per-stripe versioned write-locks (`version << 1 | locked`),
//! * commit-time lock → validate → write-back → release-at-`wv`.
//!
//! The paper's mark-bit fast path is emulated natively as a per-thread
//! stripe filter plus a global commit epoch (see [`exec`] for the
//! soundness argument): a filtered read is two loads — value, epoch —
//! mirroring the two-instruction marked read barrier of the hardware
//! design, and the filter survives the thread's own commits the way mark
//! bits do in the paper's §6 single-thread reuse scenario.
//!
//! The backend exists for *differential testing* (the same workloads run
//! on the simulator and natively, and must agree) and for native
//! throughput numbers in `BENCH.json`; it is not a production STM — in
//! particular, transactional allocations are never reclaimed.
//!
//! [Dice, Shalev, Shavit 2006]: https://doi.org/10.1007/11864219_14

pub mod exec;
pub mod heap;
pub mod tl2;

pub use exec::{NativeExec, NativeRoTxn, NativeTxn};
pub use heap::NativeHeap;
pub use tl2::{NativeConfig, NativeRuntime, NativeStats, StripeState, WritebackHook};
