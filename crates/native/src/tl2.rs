//! The shared state of the native TL2 runtime: the global version clock,
//! the per-stripe versioned write-lock table, and the commit epoch that
//! emulates the paper's mark-bit filter on real hardware.
//!
//! ## Protocol (TL2, word-stripe variant)
//!
//! * Every 8-byte heap word hashes to one **stripe**; each stripe owns a
//!   versioned write-lock word: `version << 1 | locked`. Locking CASes
//!   `v << 1` to `(v << 1) | 1`, so the pre-lock version stays readable
//!   while the stripe is held.
//! * A transaction snapshots the global clock at begin (`rv`). Reads use
//!   the lock–load–lock sandwich: the stripe must be unlocked with
//!   `version <= rv` both before and after the value load.
//! * Writers buffer into a redo log, then at commit: lock the write
//!   stripes in ascending order, increment the clock to obtain `wv`,
//!   revalidate the read set against `rv`, write back, and release every
//!   stripe at `wv`.
//!
//! ## Mark-bit filter emulation
//!
//! The paper's HASTM fast path skips the read-barrier bookkeeping when
//! the line's mark bit survived. Real ISAs have no mark bits, so the
//! native backend emulates the *filter* with per-thread state
//! (`NativeExec`) plus one piece of shared state here: a global **commit
//! epoch**, bumped by every writing commit after validation and before
//! write-back. A thread's filter records stripes it read while the epoch
//! had one specific value; as long as the epoch still has that value, no
//! transaction anywhere has committed a write, memory is frozen, and a
//! filtered read needs no sandwich and no read-set entry — two
//! instructions (load value, load epoch), the same shape as the paper's
//! two-instruction marked-line read barrier. Any epoch movement
//! invalidates every filter at once, the analog of losing mark bits to
//! cache evictions.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

use hastm::{ObjRef, PhasedParams, SharedModeState, Versioning};
use hastm_sim::Addr;

use crate::heap::NativeHeap;

/// Configuration of one [`NativeRuntime`].
#[derive(Clone, Debug)]
pub struct NativeConfig {
    /// Heap capacity in 8-byte words.
    pub heap_words: usize,
    /// Stripe-lock table size (rounded up to a power of two).
    pub stripes: usize,
    /// Enable the mark-bit filter emulation (the HASTM analog); disabled
    /// gives the plain TL2 baseline (the STM analog).
    pub mark_filter: bool,
    /// Bounded spins when acquiring a write lock before giving up and
    /// aborting (keeps commit lock-acquisition livelock-free).
    pub max_lock_spins: u32,
    /// Per-thread filter capacity in stripes; reads past it stay on the
    /// slow path (mirrors finite mark-bit cache capacity).
    pub filter_capacity: usize,
    /// Version management: [`Versioning::Single`] is plain TL2;
    /// [`Versioning::Multi`] keeps a k-deep ring of committed
    /// `(version, value)` pairs per written word, giving read-only
    /// transactions ([`crate::NativeExec`]'s `atomic_ro`) an abort-free
    /// snapshot-read path with no lock–load–lock sandwich.
    pub versioning: Versioning,
    /// Enable the PhTM-style global phase controller
    /// ([`hastm::ModePolicy::Phased`]'s native twin): executors enter the
    /// shared phase word before every attempt, the `Cautious` phase
    /// suppresses the filter fast path, and the `Serial` phase runs
    /// irrevocable transactions under the global token (no validation,
    /// no aborts). `None` keeps the plain free-running TL2 scheme.
    pub phased: Option<PhasedParams>,
}

impl Default for NativeConfig {
    fn default() -> Self {
        NativeConfig {
            heap_words: 1 << 20,
            stripes: 1 << 16,
            mark_filter: true,
            max_lock_spins: 128,
            filter_capacity: 4096,
            versioning: Versioning::Single,
            phased: None,
        }
    }
}

/// Decoded state of one stripe lock word.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct StripeState {
    /// Version of the last committed write to the stripe.
    pub version: u64,
    /// Whether a committing writer currently holds the stripe.
    pub locked: bool,
}

/// Per-thread counters of the native backend, merged across threads by
/// the harnesses.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NativeStats {
    /// Committed transactions.
    pub commits: u64,
    /// Aborts from read/lock validation conflicts.
    pub aborts_conflict: u64,
    /// Aborts from a stale filter detected at commit time.
    pub aborts_filter_stale: u64,
    /// Reads served by the filter fast path (no sandwich, no read-set
    /// entry).
    pub fast_reads: u64,
    /// Reads served by the full TL2 sandwich.
    pub slow_reads: u64,
    /// Writing commits that kept their filter alive across the commit
    /// (the single-thread reuse win of §6).
    pub filter_retained: u64,
    /// Committed read-only (`atomic_ro`) transactions. Under
    /// [`Versioning::Multi`] these ran on the snapshot path; under
    /// [`Versioning::Single`] they fell back to ordinary transactions and
    /// are counted under `commits` only.
    pub ro_commits: u64,
    /// Aborted snapshot read-only attempts. Structurally zero — snapshot
    /// reads spin past locked stripes instead of aborting and snapshot
    /// commits validate nothing — but counted so harnesses can *assert*
    /// the zero rather than assume it.
    pub ro_aborts: u64,
    /// Reads served by the snapshot path (version ring or frozen-word
    /// fallback), sandwich-free and read-set-free.
    pub snapshot_reads: u64,
    /// `(version, value)` pairs published into version rings by this
    /// thread's writing commits.
    pub versions_published: u64,
    /// Ring entries reclaimed by this thread's commit-time pruning.
    pub versions_reclaimed: u64,
    /// Committed irrevocable (serial-phase) transactions. Non-zero only
    /// under [`NativeConfig::phased`]; counted inside `commits` too.
    pub serial_commits: u64,
    /// Phase transitions this thread's events published. Non-zero only
    /// under [`NativeConfig::phased`].
    pub phase_transitions: u64,
}

impl NativeStats {
    /// Total aborted attempts.
    pub fn aborts(&self) -> u64 {
        self.aborts_conflict + self.aborts_filter_stale
    }

    /// Folds another thread's counters in.
    pub fn merge(&mut self, other: &NativeStats) {
        self.commits += other.commits;
        self.aborts_conflict += other.aborts_conflict;
        self.aborts_filter_stale += other.aborts_filter_stale;
        self.fast_reads += other.fast_reads;
        self.slow_reads += other.slow_reads;
        self.filter_retained += other.filter_retained;
        self.ro_commits += other.ro_commits;
        self.ro_aborts += other.ro_aborts;
        self.snapshot_reads += other.snapshot_reads;
        self.versions_published += other.versions_published;
        self.versions_reclaimed += other.versions_reclaimed;
        self.serial_commits += other.serial_commits;
        self.phase_transitions += other.phase_transitions;
    }
}

/// Test hook invoked during commit write-back as `(words_written,
/// words_total)` — once with `(0, n)` before the first store and once
/// after each store. Lets the stress tests freeze a committer mid
/// write-back while it holds its stripe locks.
pub type WritebackHook = Arc<dyn Fn(usize, usize) + Send + Sync>;

/// Shared state of the native backend; threads hold `&NativeRuntime` and
/// drive it through per-thread [`crate::NativeExec`]s.
pub struct NativeRuntime {
    heap: NativeHeap,
    locks: Box<[AtomicU64]>,
    stripe_mask: u64,
    clock: AtomicU64,
    epoch: AtomicU64,
    cfg: NativeConfig,
    hook_armed: AtomicBool,
    hook: Mutex<Option<WritebackHook>>,
    start: std::time::Instant,
    /// Sharded version rings (`Some` only under [`Versioning::Multi`]):
    /// per shard, word address → ring of `(version, value)` pairs in
    /// ascending version order. Writers publish here *before* each
    /// write-back store (so the ring's oldest entry, seeded at version 0,
    /// is the word's pre-transactional image and a ring miss proves the
    /// word was never transactionally written).
    rings: Option<Box<[Mutex<HashMap<u64, Vec<(u64, u64)>>>]>>,
    ring_mask: u64,
    /// Live read-only snapshot registry: one slot per executor, holding
    /// the snapshot `rv` while an `atomic_ro` region runs and `u64::MAX`
    /// when idle. Commit-time pruning keeps every version a registered
    /// reader can still need.
    ro_slots: Mutex<Vec<Arc<AtomicU64>>>,
    /// The scheme-wide phase machine (`Some` only under
    /// [`NativeConfig::phased`]) — the same [`SharedModeState`] the
    /// simulator backend gates, here driven by real `SeqCst` atomics.
    phase: Option<SharedModeState>,
}

/// Ring shard count: per-stripe sharding would be ideal for contention
/// but 2^16 mutex-wrapped maps is wasteful; 256 shards keeps publish
/// contention negligible at the thread counts the harnesses use.
const RING_SHARDS: usize = 256;

impl NativeRuntime {
    /// Builds a runtime with the given configuration.
    pub fn new(cfg: NativeConfig) -> Self {
        let stripes = cfg.stripes.next_power_of_two().max(2);
        let locks: Vec<AtomicU64> = (0..stripes).map(|_| AtomicU64::new(0)).collect();
        let rings = cfg.versioning.is_multi().then(|| {
            (0..RING_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect::<Vec<_>>()
                .into_boxed_slice()
        });
        let phase = cfg.phased.map(SharedModeState::new);
        NativeRuntime {
            heap: NativeHeap::new(cfg.heap_words),
            locks: locks.into_boxed_slice(),
            stripe_mask: (stripes - 1) as u64,
            clock: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            cfg,
            hook_armed: AtomicBool::new(false),
            hook: Mutex::new(None),
            start: std::time::Instant::now(),
            rings,
            ring_mask: (RING_SHARDS - 1) as u64,
            ro_slots: Mutex::new(Vec::new()),
            phase,
        }
    }

    /// The shared phase machine, when the runtime is phased.
    pub fn phase_state(&self) -> Option<&SharedModeState> {
        self.phase.as_ref()
    }

    /// Nanoseconds elapsed since the runtime was built — the native
    /// backend's wall clock for the [`hastm::TmExec::clock`] seam (the
    /// host analog of the simulator's cycle counter).
    pub fn nanos(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// The runtime's configuration.
    pub fn config(&self) -> &NativeConfig {
        &self.cfg
    }

    /// The heap.
    pub fn heap(&self) -> &NativeHeap {
        &self.heap
    }

    /// Stripe index of a byte address (8-byte striping, like the
    /// word-granular lock tables of the TL2 lineage).
    pub fn stripe_of(&self, byte: u64) -> usize {
        ((byte >> 3) & self.stripe_mask) as usize
    }

    /// Decoded lock word of `stripe`.
    pub fn stripe_state(&self, stripe: usize) -> StripeState {
        let raw = self.locks[stripe].load(SeqCst);
        StripeState {
            version: raw >> 1,
            locked: raw & 1 == 1,
        }
    }

    /// Current global version clock.
    pub fn clock(&self) -> u64 {
        self.clock.load(SeqCst)
    }

    /// Current commit epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(SeqCst)
    }

    /// Snapshots the clock for a beginning transaction.
    pub(crate) fn read_version(&self) -> u64 {
        self.clock.load(SeqCst)
    }

    /// Claims a fresh write version.
    pub(crate) fn next_write_version(&self) -> u64 {
        self.clock.fetch_add(1, SeqCst) + 1
    }

    /// Bumps the commit epoch (validation passed, write-back imminent);
    /// returns the pre-bump value so the committer can tell whether its
    /// own filter was still current.
    pub(crate) fn bump_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, SeqCst)
    }

    /// Raw lock word of `stripe`.
    pub(crate) fn lock_word(&self, stripe: usize) -> u64 {
        self.locks[stripe].load(SeqCst)
    }

    /// Tries to lock `stripe`, spinning at most `max_lock_spins` times.
    /// Returns the pre-lock version on success.
    pub(crate) fn try_lock_stripe(&self, stripe: usize) -> Option<u64> {
        let lock = &self.locks[stripe];
        for _ in 0..=self.cfg.max_lock_spins {
            let cur = lock.load(SeqCst);
            if cur & 1 == 0 {
                if lock.compare_exchange(cur, cur | 1, SeqCst, SeqCst).is_ok() {
                    return Some(cur >> 1);
                }
            } else {
                std::hint::spin_loop();
            }
        }
        None
    }

    /// Releases `stripe` at version `version`.
    pub(crate) fn unlock_stripe(&self, stripe: usize, version: u64) {
        self.locks[stripe].store(version << 1, SeqCst);
    }

    /// Whether the runtime keeps multi-version rings.
    pub fn is_multi(&self) -> bool {
        self.cfg.versioning.is_multi()
    }

    /// Registers a read-only snapshot slot for one executor. The slot
    /// holds `u64::MAX` while idle; `atomic_ro` stores its `rv` for the
    /// duration of the region so pruning cannot reclaim versions the
    /// region can still read.
    pub(crate) fn register_ro_slot(&self) -> Arc<AtomicU64> {
        let slot = Arc::new(AtomicU64::new(u64::MAX));
        self.ro_slots.lock().unwrap().push(Arc::clone(&slot));
        slot
    }

    /// Reclamation floor for commit-time pruning: the minimum of every
    /// registered live snapshot's `rv` and the clock *as sampled before
    /// the registry scan*. The clock clamp covers the registration race:
    /// a reader whose slot-store this scan missed captures its `rv` from
    /// a clock load that is after the scan in the `SeqCst` total order,
    /// so `rv >= clock-at-scan >= floor` and the prune keeps everything
    /// it needs (an entry is dropped only when its successor's version is
    /// `<= floor`, so the successor still serves any `rv >= floor`).
    pub(crate) fn ro_floor(&self) -> u64 {
        let clamp = self.clock.load(SeqCst);
        let slots = self.ro_slots.lock().unwrap();
        slots.iter().map(|s| s.load(SeqCst)).fold(clamp, u64::min)
    }

    /// Publishes `(wv, value)` into `addr`'s version ring, seeding the
    /// ring with the pre-image at version 0 on first publish, then prunes
    /// entries no live reader can need. **Must be called before the
    /// write-back store of `addr`** (the seed reads the heap) and while
    /// the committing writer holds `addr`'s stripe lock. Returns
    /// `(published, reclaimed)` entry counts.
    pub(crate) fn publish_version(
        &self,
        addr: u64,
        wv: u64,
        value: u64,
        floor: u64,
    ) -> (u64, u64) {
        let rings = self.rings.as_ref().expect("publish_version requires Multi");
        let depth = self.cfg.versioning.depth();
        let mut shard = rings[(addr >> 3 & self.ring_mask) as usize].lock().unwrap();
        let ring = shard
            .entry(addr)
            .or_insert_with(|| vec![(0, self.heap.load(addr))]);
        ring.push((wv, value));
        let mut reclaimed = 0;
        while ring.len() > depth && ring[1].0 <= floor {
            ring.remove(0);
            reclaimed += 1;
        }
        (1, reclaimed)
    }

    /// Snapshot lookup: the newest committed version of `addr` with
    /// `version <= rv`, or `None` if the word has no ring (never
    /// transactionally written — the heap word is frozen at its
    /// pre-transactional value). A ring whose entries are all newer than
    /// `rv` would mean pruning dropped a version a live reader needed;
    /// that is an invariant violation, flagged in debug builds and
    /// served the oldest surviving entry in release.
    pub(crate) fn snapshot_lookup(&self, addr: u64, rv: u64) -> Option<u64> {
        let rings = self.rings.as_ref().expect("snapshot_lookup requires Multi");
        let shard = rings[(addr >> 3 & self.ring_mask) as usize].lock().unwrap();
        let ring = shard.get(&addr)?;
        let idx = ring.partition_point(|&(version, _)| version <= rv);
        debug_assert!(
            idx > 0,
            "snapshot rv={rv} has no version <= rv for addr {addr:#x}: \
             pruning reclaimed a pinned version (ring head {:?})",
            ring.first(),
        );
        Some(ring[idx.saturating_sub(1)].1)
    }

    /// Test-only: the version stamps currently ringed for `addr`.
    #[doc(hidden)]
    pub fn ring_versions(&self, addr: Addr) -> Vec<u64> {
        match &self.rings {
            None => Vec::new(),
            Some(rings) => rings[(addr.0 >> 3 & self.ring_mask) as usize]
                .lock()
                .unwrap()
                .get(&addr.0)
                .map(|ring| ring.iter().map(|&(v, _)| v).collect())
                .unwrap_or_default(),
        }
    }

    /// Allocates an object: one (unused, zero) header word plus
    /// `data_words` payload words, laid out exactly like the simulated
    /// heap so [`ObjRef::word`] arithmetic agrees.
    pub fn alloc_obj(&self, data_words: u32) -> ObjRef {
        let base = self.heap.alloc_words(1 + data_words as usize);
        ObjRef(Addr(base))
    }

    /// Non-transactional read of one word — for post-quiescence
    /// inspection by tests and harnesses only.
    pub fn peek(&self, addr: Addr) -> u64 {
        self.heap.load(addr.0)
    }

    /// Installs (or clears) the write-back pause hook. Test-only
    /// machinery; the armed flag keeps the common commit path to one
    /// relaxed boolean load.
    #[doc(hidden)]
    pub fn set_writeback_hook(&self, hook: Option<WritebackHook>) {
        self.hook_armed.store(hook.is_some(), SeqCst);
        *self.hook.lock().unwrap() = hook;
    }

    /// The current hook, if armed.
    pub(crate) fn writeback_hook(&self) -> Option<WritebackHook> {
        if !self.hook_armed.load(std::sync::atomic::Ordering::Relaxed) {
            return None;
        }
        self.hook.lock().unwrap().clone()
    }

    /// Test-only: force-lock a stripe (as if a committer stalled holding
    /// it). Returns the pre-lock version, or `None` if already locked.
    #[doc(hidden)]
    pub fn debug_lock_stripe(&self, stripe: usize) -> Option<u64> {
        let cur = self.locks[stripe].load(SeqCst);
        if cur & 1 == 1 {
            return None;
        }
        self.locks[stripe]
            .compare_exchange(cur, cur | 1, SeqCst, SeqCst)
            .ok()
            .map(|prev| prev >> 1)
    }

    /// Test-only: release a stripe locked by [`Self::debug_lock_stripe`].
    #[doc(hidden)]
    pub fn debug_unlock_stripe(&self, stripe: usize, version: u64) {
        self.unlock_stripe(stripe, version);
    }
}

impl std::fmt::Debug for NativeRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NativeRuntime")
            .field("heap", &self.heap)
            .field("stripes", &self.locks.len())
            .field("clock", &self.clock())
            .field("epoch", &self.epoch())
            .field("mark_filter", &self.cfg.mark_filter)
            .field("versioning", &self.cfg.versioning)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_word_encodes_version_and_held_bit() {
        let rt = NativeRuntime::new(NativeConfig {
            heap_words: 64,
            stripes: 8,
            ..NativeConfig::default()
        });
        let s = rt.stripe_of(rt.alloc_obj(1).word(0).0);
        assert_eq!(
            rt.stripe_state(s),
            StripeState {
                version: 0,
                locked: false
            }
        );
        let pre = rt.try_lock_stripe(s).expect("unlocked stripe locks");
        assert_eq!(pre, 0);
        assert!(rt.stripe_state(s).locked);
        assert_eq!(rt.stripe_state(s).version, 0, "version visible while held");
        assert!(
            rt.try_lock_stripe(s).is_none(),
            "held stripe rejects lockers"
        );
        rt.unlock_stripe(s, 5);
        assert_eq!(
            rt.stripe_state(s),
            StripeState {
                version: 5,
                locked: false
            }
        );
    }

    #[test]
    fn adjacent_words_fall_in_distinct_stripes() {
        let rt = NativeRuntime::new(NativeConfig::default());
        let o = rt.alloc_obj(4);
        let stripes: Vec<usize> = (0..4).map(|i| rt.stripe_of(o.word(i).0)).collect();
        let unique: std::collections::HashSet<&usize> = stripes.iter().collect();
        assert_eq!(unique.len(), 4, "8-byte striping separates adjacent words");
    }
}
