//! Property tests for the native TL2 commit protocol:
//!
//! * a committed transaction's write-back matches a host-side model, the
//!   written stripes advance to the commit's write version, and every
//!   lock is released;
//! * no read of a locked-or-newer stripe survives validation — at read
//!   time (the lock–load–lock sandwich) and at commit time (read-set
//!   revalidation);
//! * a failed commit is invisible: heap words and lock words are exactly
//!   as before the attempt;
//! * write-back is atomic under the held locks: at every point during
//!   write-back, every written stripe's lock bit is observably held.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use hastm::{Abort, ObjRef, TmContext, TmExec};
use hastm_native::{NativeConfig, NativeExec, NativeRuntime, WritebackHook};
use proptest::prelude::*;

fn runtime(mark_filter: bool) -> NativeRuntime {
    NativeRuntime::new(NativeConfig {
        heap_words: 1 << 12,
        stripes: 1 << 10,
        mark_filter,
        ..NativeConfig::default()
    })
}

const CELLS: usize = 8;

fn alloc_cells(ex: &mut NativeExec<'_>) -> Vec<ObjRef> {
    (0..CELLS)
        .map(|i| {
            let c = ex.alloc_obj(1);
            ex.atomic(|ctx| ctx.ctx_write(c, 0, 100 + i as u64));
            c
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Commit write-back matches a host-side model; written stripes
    /// advance to the commit's write version; all locks are released.
    #[test]
    fn committed_writeback_matches_model(
        writes in proptest::collection::vec((0..CELLS as u8, any::<u64>()), 1..16),
        mark_filter in any::<bool>(),
    ) {
        let rt = runtime(mark_filter);
        let mut ex = NativeExec::new(&rt);
        let cells = alloc_cells(&mut ex);
        let mut model: HashMap<u8, u64> =
            (0..CELLS as u8).map(|i| (i, 100 + u64::from(i))).collect();

        let writes_ref = &writes;
        let cells_ref = &cells;
        ex.atomic(|ctx| {
            for &(cell, value) in writes_ref {
                ctx.ctx_write(cells_ref[cell as usize], 0, value)?;
            }
            // Reads inside the txn see the redo log.
            for &(cell, _) in writes_ref {
                let last = writes_ref
                    .iter()
                    .rev()
                    .find(|&&(c, _)| c == cell)
                    .map(|&(_, v)| v)
                    .unwrap();
                assert_eq!(ctx.ctx_read(cells_ref[cell as usize], 0)?, last);
            }
            Ok(())
        });
        for &(cell, value) in &writes {
            model.insert(cell, value);
        }

        let wv = rt.clock();
        for (i, cell) in cells.iter().enumerate() {
            prop_assert_eq!(rt.peek(cell.word(0)), model[&(i as u8)], "cell {}", i);
            let st = rt.stripe_state(rt.stripe_of(cell.word(0).0));
            prop_assert!(!st.locked, "stripe of cell {} left locked", i);
            if writes.iter().any(|&(c, _)| c as usize == i) {
                prop_assert_eq!(
                    st.version, wv,
                    "written stripe of cell {} must advance to the commit wv", i
                );
            }
        }
    }

    /// A slow-path read of a stripe someone else holds locked aborts at
    /// read time, and a stripe whose version moved past the reader's rv
    /// aborts at read time — the lock–load–lock sandwich.
    #[test]
    fn locked_or_newer_read_aborts_at_read_time(
        cell in 0..CELLS as u8,
        value in any::<u64>(),
    ) {
        let rt = runtime(false);
        let mut setup = NativeExec::new(&rt);
        let cells = alloc_cells(&mut setup);
        let addr = cells[cell as usize].word(0);
        let stripe = rt.stripe_of(addr.0);

        // Locked by a stalled committer: read aborts.
        {
            let mut ex = NativeExec::new(&rt);
            let pre = rt.debug_lock_stripe(stripe).expect("unlocked");
            let mut txn = ex.txn();
            prop_assert_eq!(txn.ctx_read(cells[cell as usize], 0), Err(Abort::Conflict));
            txn.rollback();
            rt.debug_unlock_stripe(stripe, pre);
        }

        // Newer than rv: a commit lands after the snapshot, read aborts.
        {
            let mut reader = NativeExec::new(&rt);
            let mut writer = NativeExec::new(&rt);
            let mut txn = reader.txn();
            writer.atomic(|ctx| ctx.ctx_write(cells[cell as usize], 0, value));
            prop_assert_eq!(txn.ctx_read(cells[cell as usize], 0), Err(Abort::Conflict));
            txn.rollback();
        }
    }

    /// A read that validated at read time but whose stripe moves past rv
    /// before commit is caught by commit-time revalidation, and the
    /// failed commit leaves heap and lock words untouched.
    #[test]
    fn stale_read_set_fails_commit_and_failed_commit_is_invisible(
        read_cell in 0..CELLS as u8,
        cell_offset in 1..CELLS as u8,
        value in any::<u64>(),
        mark_filter in any::<bool>(),
    ) {
        let write_cell = (read_cell + cell_offset) % CELLS as u8;
        let rt = runtime(mark_filter);
        let mut victim = NativeExec::new(&rt);
        let cells = alloc_cells(&mut victim);
        let write_addr = cells[write_cell as usize].word(0);
        let before_value = rt.peek(write_addr);
        let before_lock = rt.stripe_state(rt.stripe_of(write_addr.0));

        let mut txn = victim.txn();
        let seen = txn.ctx_read(cells[read_cell as usize], 0).unwrap();
        assert_eq!(seen, 100 + u64::from(read_cell));
        txn.ctx_write(cells[write_cell as usize], 0, value).unwrap();

        // Interference: another thread commits to the stripe we read.
        let mut other = NativeExec::new(&rt);
        other.atomic(|ctx| {
            let v = ctx.ctx_read(cells[read_cell as usize], 0)?;
            ctx.ctx_write(cells[read_cell as usize], 0, v + 1)
        });

        prop_assert_eq!(txn.commit(), Err(Abort::Conflict));
        prop_assert_eq!(
            rt.peek(write_addr), before_value,
            "failed commit must not write back"
        );
        let after_lock = rt.stripe_state(rt.stripe_of(write_addr.0));
        prop_assert!(!after_lock.locked);
        prop_assert_eq!(
            after_lock.version, before_lock.version,
            "failed commit must restore the pre-lock version"
        );
    }
}

/// During write-back every written stripe's lock bit is held, the commit
/// epoch has already moved, and the heap transitions happen one word at a
/// time under those locks — observed from inside the write-back hook.
#[test]
fn writeback_holds_every_written_stripe_lock() {
    let rt = Arc::new(runtime(true));
    let mut ex = NativeExec::new(&rt);
    let cells = alloc_cells(&mut ex);
    let stripes: Vec<usize> = cells.iter().map(|c| rt.stripe_of(c.word(0).0)).collect();

    let violation = Arc::new(AtomicBool::new(false));
    let epoch_before = rt.epoch();
    let hook: WritebackHook = {
        let violation = Arc::clone(&violation);
        let rt = Arc::clone(&rt);
        let stripes = stripes.clone();
        Arc::new(move |_done, _total| {
            for &s in &stripes {
                if !rt.stripe_state(s).locked {
                    violation.store(true, Ordering::SeqCst);
                }
            }
            if rt.epoch() == epoch_before {
                // The epoch must bump before the first store is visible.
                violation.store(true, Ordering::SeqCst);
            }
        })
    };
    rt.set_writeback_hook(Some(hook));
    ex.atomic(|ctx| {
        for (i, c) in cells.iter().enumerate() {
            ctx.ctx_write(*c, 0, 7 + i as u64)?;
        }
        Ok(())
    });
    rt.set_writeback_hook(None);

    assert!(
        !violation.load(Ordering::SeqCst),
        "write-back observed an unlocked written stripe or an unbumped epoch"
    );
    for (i, c) in cells.iter().enumerate() {
        assert_eq!(rt.peek(c.word(0)), 7 + i as u64);
    }
}

/// Concurrent randomized transfers conserve the total balance — the
/// classic atomicity smoke for the whole protocol under real contention.
#[test]
fn concurrent_transfers_conserve_total_balance() {
    for mark_filter in [false, true] {
        let rt = runtime(mark_filter);
        let mut setup = NativeExec::new(&rt);
        let accounts: Vec<ObjRef> = (0..4)
            .map(|_| {
                let a = setup.alloc_obj(1);
                setup.atomic(|ctx| ctx.ctx_write(a, 0, 1_000));
                a
            })
            .collect();
        std::thread::scope(|s| {
            for tid in 0..4u64 {
                let rt = &rt;
                let accounts = &accounts;
                s.spawn(move || {
                    let mut ex = NativeExec::new(rt);
                    let mut x = tid.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
                    for _ in 0..400 {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let from = (x % 4) as usize;
                        // Distinct from `from`: a self-transfer would fold
                        // both writes into one redo-log slot.
                        let to = (from + 1 + ((x >> 8) % 3) as usize) % 4;
                        let amount = (x >> 16) % 50;
                        ex.atomic(|ctx| {
                            let f = ctx.ctx_read(accounts[from], 0)?;
                            if f >= amount {
                                let t = ctx.ctx_read(accounts[to], 0)?;
                                ctx.ctx_write(accounts[from], 0, f - amount)?;
                                ctx.ctx_write(accounts[to], 0, t + amount)?;
                            }
                            Ok(())
                        });
                    }
                });
            }
        });
        let total: u64 = accounts.iter().map(|a| rt.peek(a.word(0))).sum();
        assert_eq!(
            total, 4_000,
            "mark_filter={mark_filter}: balance not conserved"
        );
    }
}
