//! Stress tests for multi-version snapshot reads on the native TL2
//! backend: a read-only region's snapshot must stay consistent — and the
//! region abort-free — no matter how hard concurrent writers churn the
//! version rings.
//!
//! Companion to `filter_stress.rs`, which pins the mark-filter fast-read
//! protocol with the same zero-sum-ledger technique. Here the invariant
//! under attack is snapshot isolation: every cell a read-only scan
//! observes must come from the single committed prefix at the scan's
//! `rv`, even when writers have published (and pruned) generations of
//! newer versions mid-scan.
#![cfg(not(feature = "seeded-bug"))]

use std::sync::{Arc, Barrier};

use hastm::{ObjRef, TmExec, Versioning};
use hastm_native::{NativeConfig, NativeExec, NativeRuntime};

const CELLS: usize = 8;

/// Initial value of ledger cell `i`; the scan invariant is that any
/// consistent snapshot sums to `total()`.
fn initial(i: usize) -> u64 {
    50 * (i as u64 + 1)
}

fn total() -> u64 {
    (0..CELLS).map(initial).sum()
}

fn multi_rt(k: usize) -> Arc<NativeRuntime> {
    Arc::new(NativeRuntime::new(NativeConfig {
        heap_words: 1 << 10,
        stripes: 1 << 8,
        mark_filter: true,
        versioning: Versioning::Multi { k },
        ..NativeConfig::default()
    }))
}

fn ledger(rt: &NativeRuntime) -> Vec<ObjRef> {
    let mut ex = NativeExec::new(rt);
    let cells: Vec<ObjRef> = (0..CELLS).map(|_| ex.alloc_obj(1)).collect();
    ex.atomic(|ctx| {
        for (i, c) in cells.iter().enumerate() {
            ctx.ctx_write(*c, 0, initial(i))?;
        }
        Ok(())
    });
    cells
}

/// Deterministic ring-churn interleaving: a read-only scan reads one
/// cell, then (pinned at its `rv`) waits while a writer commits 12
/// zero-sum shifts — several times the k=2 ring depth, so every churned
/// cell's un-pinned versions are published *and pruned* mid-scan — and
/// only then reads the remaining cells. Snapshot isolation requires the
/// scan to observe exactly the pre-writer ledger, not merely a balanced
/// one, and to commit without an abort: the pruning floor must have kept
/// every version the pinned `rv` can need.
#[test]
fn pinned_snapshot_outlives_ring_churn_from_racing_commits() {
    let rt = multi_rt(2);
    let cells = ledger(&rt);
    let writer_go = Arc::new(Barrier::new(2));
    let writer_done = Arc::new(Barrier::new(2));

    let writer = std::thread::spawn({
        let rt = Arc::clone(&rt);
        let cells = cells.clone();
        let writer_go = Arc::clone(&writer_go);
        let writer_done = Arc::clone(&writer_done);
        move || {
            writer_go.wait();
            let mut ex = NativeExec::new(&rt);
            for round in 0..12u64 {
                let from = (round as usize) % CELLS;
                let to = (from + 1) % CELLS;
                let shift = round % 7 + 1;
                ex.atomic(|ctx| {
                    let vf = ctx.ctx_read(cells[from], 0)?;
                    let vt = ctx.ctx_read(cells[to], 0)?;
                    ctx.ctx_write(cells[from], 0, vf - shift)?;
                    ctx.ctx_write(cells[to], 0, vt + shift)
                });
            }
            let stats = ex.stats().clone();
            writer_done.wait();
            stats
        }
    });

    let mut reader = NativeExec::new(&rt);
    let mut released = false;
    let observed = reader.atomic_ro(|ctx| {
        let first = ctx.ctx_read(cells[0], 0)?;
        // Release the writer exactly once, mid-scan; a snapshot region
        // never retries under Multi, so the barriers meet exactly once.
        if !released {
            released = true;
            writer_go.wait();
            writer_done.wait();
        }
        let mut vals = vec![first];
        for c in &cells[1..] {
            vals.push(ctx.ctx_read(*c, 0)?);
        }
        Ok(vals)
    });
    let writer_stats = writer.join().unwrap();

    let expected: Vec<u64> = (0..CELLS).map(initial).collect();
    assert_eq!(
        observed, expected,
        "the pinned scan must see the exact pre-writer ledger"
    );
    let stats = reader.stats();
    assert_eq!(stats.ro_commits, 1);
    assert_eq!(stats.ro_aborts, 0, "snapshot region aborted: {stats:?}");
    assert_eq!(stats.snapshot_reads, CELLS as u64);
    assert_eq!(writer_stats.commits, 12);
    assert!(
        writer_stats.versions_published >= 24,
        "every written-back word must publish a ring entry: {writer_stats:?}"
    );

    // Once the pin is gone, a fresh snapshot sees the shifted ledger —
    // still conserved, but no longer the initial distribution.
    let after = reader.atomic_ro(|ctx| {
        let mut vals = Vec::with_capacity(CELLS);
        for c in &cells {
            vals.push(ctx.ctx_read(*c, 0)?);
        }
        Ok(vals)
    });
    assert_eq!(after.iter().sum::<u64>(), total());
    assert_ne!(after, expected, "the writer's shifts must be visible");
}

/// Live-race stress (no pausing): two invariant-preserving writers churn
/// the ledger while two snapshot scanners — slowed per-cell so their
/// regions span many commits — repeatedly sum it. Every scan must
/// balance, and under Multi(k) not one may abort.
#[test]
fn live_ro_scans_conserve_the_ledger_and_never_abort() {
    let rt = multi_rt(3);
    let cells = ledger(&rt);
    let rounds = 300u64;
    std::thread::scope(|s| {
        let writers: Vec<_> = (0..2u64)
            .map(|w| {
                let rt = &rt;
                let cells = &cells;
                s.spawn(move || {
                    let mut ex = NativeExec::new(rt);
                    for i in 0..rounds {
                        let from = ((i + w) % CELLS as u64) as usize;
                        let to = ((i * 3 + w * 5 + 1) % CELLS as u64) as usize;
                        if from == to {
                            continue;
                        }
                        let shift = i % 5 + 1;
                        ex.atomic(|ctx| {
                            let vf = ctx.ctx_read(cells[from], 0)?;
                            let vt = ctx.ctx_read(cells[to], 0)?;
                            ctx.ctx_write(cells[from], 0, vf.wrapping_sub(shift))?;
                            ctx.ctx_write(cells[to], 0, vt.wrapping_add(shift))
                        });
                    }
                })
            })
            .collect();
        let scanners: Vec<_> = (0..2)
            .map(|_| {
                let rt = &rt;
                let cells = &cells;
                s.spawn(move || {
                    let mut ex = NativeExec::new(rt);
                    for _ in 0..rounds {
                        let sum = ex.atomic_ro(|ctx| {
                            let mut sum = 0u64;
                            for c in cells {
                                ctx.ctx_work(50);
                                sum = sum.wrapping_add(ctx.ctx_read(*c, 0)?);
                            }
                            Ok(sum)
                        });
                        assert_eq!(sum, total(), "torn snapshot under live race");
                    }
                    let st = ex.stats();
                    assert_eq!(st.ro_commits, rounds);
                    assert_eq!(st.ro_aborts, 0, "read-only snapshot aborted: {st:?}");
                    assert!(st.snapshot_reads >= rounds * CELLS as u64);
                })
            })
            .collect();
        for t in writers.into_iter().chain(scanners) {
            t.join().unwrap();
        }
    });

    // Quiescent conservation: the writers' zero-sum shifts (wrapping)
    // leave the ledger total exactly where it started.
    let final_sum = cells
        .iter()
        .fold(0u64, |acc, c| acc.wrapping_add(rt.peek(c.word(0))));
    assert_eq!(final_sum, total(), "ledger total drifted under churn");
}
