//! Stress test for the mark-bit filter emulation: commit-epoch bumps must
//! invalidate stale per-thread filters.
//!
//! The deterministic core interleaving, built with the write-back pause
//! hook and a pair of barriers:
//!
//! 1. a reader warms its filter on two cells whose values satisfy an
//!    invariant (`A + B == TOTAL`);
//! 2. a writer transaction updates both cells (preserving the invariant)
//!    and is **paused mid write-back** — after storing `A`, before
//!    storing `B` — exactly the window where memory is torn;
//! 3. the paused-out reader attempts both reads through its (now stale)
//!    filter.
//!
//! With the epoch checks in place the fast path must refuse (the writer
//! bumped the commit epoch before its first store) and the slow path must
//! abort on the held stripe lock — the reader can never observe the torn
//! state. Compiled with `--features seeded-bug` (which drops exactly the
//! epoch checks), the reader sails through its stale filter and returns a
//! torn sum; the mutation test asserts this is *caught*, proving the
//! suite actually guards the filter protocol.

use std::sync::{Arc, Barrier};

use hastm::{Abort, ObjRef, TmContext, TmExec};
use hastm_native::{NativeConfig, NativeExec, NativeRuntime, WritebackHook};

const TOTAL: u64 = 1_000;

struct Rig {
    rt: Arc<NativeRuntime>,
    a: ObjRef,
    b: ObjRef,
}

fn rig() -> Rig {
    let rt = Arc::new(NativeRuntime::new(NativeConfig {
        heap_words: 1 << 10,
        stripes: 1 << 8,
        mark_filter: true,
        ..NativeConfig::default()
    }));
    let (a, b) = {
        let mut ex = NativeExec::new(&rt);
        let a = ex.alloc_obj(1);
        let b = ex.alloc_obj(1);
        ex.atomic(|ctx| {
            ctx.ctx_write(a, 0, TOTAL / 2)?;
            ctx.ctx_write(b, 0, TOTAL - TOTAL / 2)
        });
        (a, b)
    };
    Rig { rt, a, b }
}

/// Runs the deterministic torn-window interleaving once and returns what
/// the reader observed through its stale filter: `Ok(sum)` if both reads
/// were served, `Err` if the protocol refused.
fn paused_writer_round(rig: &Rig, shift: u64) -> Result<u64, Abort> {
    let Rig { rt, a, b } = rig;

    // 1. Warm the reader's filter on both cells under a quiet epoch.
    let mut reader = NativeExec::new(rt);
    let warm = reader.atomic(|ctx| {
        let va = ctx.ctx_read(*a, 0)?;
        let vb = ctx.ctx_read(*b, 0)?;
        Ok(va + vb)
    });
    assert_eq!(warm, TOTAL, "setup violates the invariant");

    // 2. Writer thread, paused after its first write-back store.
    let reader_go = Arc::new(Barrier::new(2));
    let reader_done = Arc::new(Barrier::new(2));
    let hook: WritebackHook = {
        let reader_go = Arc::clone(&reader_go);
        let reader_done = Arc::clone(&reader_done);
        Arc::new(move |done, total| {
            assert_eq!(total, 2, "writer txn writes exactly two words");
            if done == 1 {
                reader_go.wait();
                reader_done.wait();
            }
        })
    };
    rt.set_writeback_hook(Some(hook));
    let writer = std::thread::spawn({
        let rt = Arc::clone(rt);
        let (a, b) = (*a, *b);
        move || {
            let mut ex = NativeExec::new(&rt);
            ex.atomic(|ctx| {
                let va = ctx.ctx_read(a, 0)?;
                let vb = ctx.ctx_read(b, 0)?;
                ctx.ctx_write(a, 0, va + shift)?;
                ctx.ctx_write(b, 0, vb - shift)
            });
        }
    });

    // 3. Mid-torn-window, the reader tries its stale filter. A single
    //    explicit attempt — the atomic retry loop would spin against the
    //    paused writer.
    reader_go.wait();
    let observed = {
        let mut txn = reader.txn();
        let result = (|| {
            let va = txn.ctx_read(*a, 0)?;
            let vb = txn.ctx_read(*b, 0)?;
            Ok(va + vb)
        })();
        match result {
            Ok(sum) => txn.commit().map(|()| sum),
            Err(e) => {
                txn.rollback();
                Err(e)
            }
        }
    };
    reader_done.wait();
    writer.join().unwrap();
    rt.set_writeback_hook(None);
    observed
}

#[cfg(not(feature = "seeded-bug"))]
mod checked {
    use super::*;

    /// The reader must never observe the torn window: every attempt
    /// through the stale filter is refused.
    #[test]
    fn stale_filter_never_serves_the_torn_window() {
        let rig = rig();
        for shift in 1..=8 {
            match paused_writer_round(&rig, shift) {
                Err(Abort::Conflict) => {}
                Err(other) => panic!("unexpected abort cause {other:?}"),
                Ok(sum) => {
                    assert_eq!(
                        sum, TOTAL,
                        "shift {shift}: reader observed a torn sum through a stale filter"
                    );
                    panic!(
                        "shift {shift}: stale filter served reads mid write-back \
                         (sum {sum} happens to balance, but the serve itself is the bug)"
                    );
                }
            }
        }
    }

    /// After the writer finishes, a fresh read must see the post-commit
    /// state — the epoch bump invalidated the stale filter, and the next
    /// slow read rebuilds it for the new window.
    #[test]
    fn epoch_bump_invalidates_then_rebuilds_the_filter() {
        let rig = rig();
        let mut reader = NativeExec::new(&rig.rt);
        let (a, b) = (rig.a, rig.b);
        let warm = reader.atomic(|ctx| {
            let va = ctx.ctx_read(a, 0)?;
            let vb = ctx.ctx_read(b, 0)?;
            Ok(va + vb)
        });
        assert_eq!(warm, TOTAL);
        let fast_before = reader.stats().fast_reads;

        // An independent writer moves the epoch.
        let mut writer = NativeExec::new(&rig.rt);
        writer.atomic(|ctx| {
            let va = ctx.ctx_read(a, 0)?;
            let vb = ctx.ctx_read(b, 0)?;
            ctx.ctx_write(a, 0, va + 11)?;
            ctx.ctx_write(b, 0, vb - 11)
        });

        // The stale filter must not serve these reads (slow path sees the
        // committed values), and the invariant still holds.
        let after = reader.atomic(|ctx| {
            let va = ctx.ctx_read(a, 0)?;
            let vb = ctx.ctx_read(b, 0)?;
            Ok(va + vb)
        });
        assert_eq!(after, TOTAL);
        assert_eq!(
            reader.stats().fast_reads,
            fast_before,
            "reads after a foreign commit must all take the slow path"
        );

        // The slow reads rebuilt the filter for the new window: the next
        // transaction fast-paths again.
        let again = reader.atomic(|ctx| {
            let va = ctx.ctx_read(a, 0)?;
            let vb = ctx.ctx_read(b, 0)?;
            Ok(va + vb)
        });
        assert_eq!(again, TOTAL);
        assert!(
            reader.stats().fast_reads > fast_before,
            "filter must rebuild after the epoch settles: {:?}",
            reader.stats()
        );
    }

    /// Anti-dependency cycle stress: thread 1 runs `Y := X + 1`, thread 2
    /// runs `X := Y + 1`, both reading through warm filters whenever the
    /// epoch allows. Every serializable history ends with the last
    /// committer's cell exactly one above the other, so at quiescence
    /// `|X - Y| == 1`. A commit that publishes against a stale fast read
    /// — e.g. an epoch-anchor check that is not atomic with the epoch
    /// bump, leaving a window for the other thread's whole commit —
    /// lets both transactions read the pre-state and converge the cells
    /// (`X == Y`), which this asserts against.
    #[test]
    fn fast_read_write_cycle_stays_serializable() {
        for round in 0..20 {
            let rt = Arc::new(NativeRuntime::new(NativeConfig {
                heap_words: 1 << 10,
                stripes: 1 << 8,
                mark_filter: true,
                ..NativeConfig::default()
            }));
            let (x, y) = {
                let mut ex = NativeExec::new(&rt);
                let x = ex.alloc_obj(1);
                let y = ex.alloc_obj(1);
                ex.atomic(|ctx| {
                    ctx.ctx_write(x, 0, 0)?;
                    ctx.ctx_write(y, 0, 0)
                });
                (x, y)
            };
            std::thread::scope(|s| {
                for (src, dst) in [(x, y), (y, x)] {
                    let rt = Arc::clone(&rt);
                    s.spawn(move || {
                        let mut ex = NativeExec::new(&rt);
                        for _ in 0..200 {
                            ex.atomic(|ctx| {
                                let v = ctx.ctx_read(src, 0)?;
                                ctx.ctx_write(dst, 0, v + 1)
                            });
                        }
                    });
                }
            });
            let (vx, vy) = (rt.peek(x.word(0)), rt.peek(y.word(0)));
            assert_eq!(
                vx.abs_diff(vy),
                1,
                "round {round}: X={vx} Y={vy} is not a serializable outcome"
            );
        }
    }

    /// Live-race stress (no pausing): concurrent invariant-preserving
    /// writers and filter-warmed readers; no reader may ever see a torn
    /// sum.
    #[test]
    fn live_race_never_tears_reads() {
        let rig = rig();
        let rounds = 300;
        std::thread::scope(|s| {
            let writer = {
                let rt = Arc::clone(&rig.rt);
                let (a, b) = (rig.a, rig.b);
                s.spawn(move || {
                    let mut ex = NativeExec::new(&rt);
                    for i in 0..rounds {
                        let shift = (i % 7) + 1;
                        ex.atomic(|ctx| {
                            let va = ctx.ctx_read(a, 0)?;
                            let vb = ctx.ctx_read(b, 0)?;
                            ctx.ctx_write(a, 0, va.wrapping_add(shift))?;
                            ctx.ctx_write(b, 0, vb.wrapping_sub(shift))
                        });
                    }
                })
            };
            let reader = {
                let rt = Arc::clone(&rig.rt);
                let (a, b) = (rig.a, rig.b);
                s.spawn(move || {
                    let mut ex = NativeExec::new(&rt);
                    for _ in 0..rounds {
                        let sum = ex.atomic(|ctx| {
                            let va = ctx.ctx_read(a, 0)?;
                            let vb = ctx.ctx_read(b, 0)?;
                            Ok(va.wrapping_add(vb))
                        });
                        assert_eq!(sum, TOTAL, "torn read under live race");
                    }
                })
            };
            writer.join().unwrap();
            reader.join().unwrap();
        });
    }
}

#[cfg(feature = "seeded-bug")]
mod seeded {
    use super::*;

    /// With the epoch checks dropped, the stale filter serves the torn
    /// window and the suite must catch it: the reader commits a sum that
    /// violates the invariant. This test passing (with the feature on)
    /// proves the stress suite detects the mutation.
    #[test]
    fn dropped_epoch_check_is_caught_by_the_stress_suite() {
        let rig = rig();
        let mut caught = 0u32;
        for shift in 1..=8 {
            match paused_writer_round(&rig, shift) {
                // The buggy fast path serves A (already written back) and
                // B (still the old value): the sum comes out TOTAL + shift.
                Ok(sum) if sum != TOTAL => {
                    assert_eq!(sum, TOTAL + shift, "torn exactly by the in-flight shift");
                    caught += 1;
                }
                Ok(_) => {}
                Err(e) => panic!(
                    "seeded-bug build still refused the stale filter ({e:?}); \
                     the mutation is not wired through"
                ),
            }
        }
        assert!(
            caught == 8,
            "the stress interleaving must catch the dropped epoch check every \
             round, caught {caught}/8"
        );
    }
}
