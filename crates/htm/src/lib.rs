//! # hastm-htm — bounded HTM and best-case HyTM baselines
//!
//! The comparison points the paper evaluates HASTM against (§7.3, Figure
//! 14): a **bounded hardware transactional memory** built on the
//! simulator's line-watch facility, and the **hybrid TM** barriers that
//! let a hardware transaction coexist with concurrent software
//! transactions by checking transaction records.
//!
//! The HTM here is deliberately simple, matching published HyTM
//! assumptions:
//!
//! * speculative stores are buffered (written back at commit) and capped
//!   by the L1's capacity/associativity — losing a transactionally
//!   accessed line to eviction aborts the transaction (a *spurious*
//!   abort);
//! * conflicts are detected at cache-line granularity from coherence
//!   traffic: a remote store to any accessed line, or a remote load of a
//!   speculatively written line, aborts;
//! * there is no escape mechanism: context switches, GC pauses, and
//!   overflow all abort — exactly the restrictions HASTM removes.
//!
//! Following the paper, the HyTM numbers produced by [`HytmThread`] are
//! *best-case*: "The HyTM execution time shown in the graphs below is that
//! of the transaction executing solely as a hardware transaction."

pub mod htm;
pub mod hybrid;

pub use htm::{HtmAbort, HtmThread, HtmTxn};
pub use hybrid::HytmThread;
