//! A bounded, cache-resident hardware transactional memory.
//!
//! Speculative stores are buffered (lazy version management) and become
//! visible at commit; the read and write footprints are tracked at
//! cache-line granularity through the simulator's watch sets, so
//!
//! * a remote store to any accessed line aborts the transaction,
//! * a remote load of a speculatively written line aborts it, and
//! * losing any tracked line to L1 eviction or inclusive-L2
//!   back-invalidation aborts it — the *spurious* abort class whose impact
//!   on scaling the paper demonstrates in §7.4.

use std::collections::HashMap;

use hastm_sim::{Addr, Cpu, ViolationCause, WatchKind};

/// Why a hardware transaction aborted.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum HtmAbort {
    /// A remote access conflicted with the transaction's footprint.
    Conflict,
    /// A tracked line fell out of the cache (capacity/conflict/inclusion):
    /// the transaction did not fit the hardware.
    Capacity,
    /// The user aborted.
    Explicit,
    /// An injected transient abort (interrupt, TLB shootdown) from
    /// [`hastm_sim::ViolationCause::Spurious`]. No cache line was lost, so
    /// it must not count as capacity pressure; retrying in hardware is
    /// reasonable.
    Spurious,
}

impl std::fmt::Display for HtmAbort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HtmAbort::Conflict => write!(f, "coherence conflict"),
            HtmAbort::Capacity => write!(f, "hardware capacity exceeded"),
            HtmAbort::Explicit => write!(f, "user abort"),
            HtmAbort::Spurious => write!(f, "spurious abort"),
        }
    }
}

impl std::error::Error for HtmAbort {}

/// Counters for one hardware-transactional thread.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HtmStats {
    /// Committed hardware transactions.
    pub commits: u64,
    /// Aborts from true coherence conflicts.
    pub aborts_conflict: u64,
    /// Aborts from capacity/eviction (spurious).
    pub aborts_capacity: u64,
    /// User aborts.
    pub aborts_explicit: u64,
    /// Injected transient aborts ([`HtmAbort::Spurious`]).
    pub aborts_spurious: u64,
}

impl HtmStats {
    /// All aborts.
    pub fn aborts(&self) -> u64 {
        self.aborts_conflict + self.aborts_capacity + self.aborts_explicit + self.aborts_spurious
    }
}

/// One thread's hardware-TM execution state.
pub struct HtmThread<'c, 'm> {
    pub(crate) cpu: &'c mut Cpu<'m>,
    stats: HtmStats,
    rng: u64,
    /// The last successful commit's write transitions
    /// `(addr, old, new)` and its publish clock — the value changes the
    /// hardware transaction made, captured at the indivisible commit
    /// instant (for serializability-verification journals).
    last_commit: (u64, Vec<(Addr, u64, u64)>),
}

impl std::fmt::Debug for HtmThread<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HtmThread")
            .field("stats", &self.stats)
            .finish()
    }
}

/// An in-flight hardware transaction (borrows the thread).
pub struct HtmTxn<'t, 'c, 'm> {
    thread: &'t mut HtmThread<'c, 'm>,
    /// Speculative store buffer: last written value per word address.
    buffer: HashMap<Addr, u64>,
    /// Write order for deterministic commit write-back.
    order: Vec<Addr>,
}

impl std::fmt::Debug for HtmTxn<'_, '_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HtmTxn")
            .field("buffered_words", &self.order.len())
            .finish()
    }
}

impl<'c, 'm> HtmThread<'c, 'm> {
    /// Creates the thread state over a core.
    pub fn new(cpu: &'c mut Cpu<'m>) -> Self {
        HtmThread {
            cpu,
            stats: HtmStats::default(),
            rng: 0x2545_f491_4f6c_dd1d,
            last_commit: (0, Vec::new()),
        }
    }

    /// This thread's statistics.
    pub fn stats(&self) -> &HtmStats {
        &self.stats
    }

    /// The last successful commit's publish clock and write transitions
    /// `(addr, pre-commit value, committed value)`, in store order.
    pub fn last_commit(&self) -> (u64, &[(Addr, u64, u64)]) {
        (self.last_commit.0, &self.last_commit.1)
    }

    /// The underlying CPU (for non-transactional work).
    pub fn cpu(&mut self) -> &mut Cpu<'m> {
        self.cpu
    }

    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    /// Runs `f` as a hardware transaction, retrying on conflicts and
    /// capacity aborts until it commits.
    ///
    /// Beware: a transaction whose footprint can never fit the L1 will
    /// retry forever — precisely the unboundedness problem hybrid schemes
    /// paper over with a software fallback. Use
    /// [`HtmThread::attempt_atomic`] to observe aborts.
    pub fn atomic<R>(
        &mut self,
        mut f: impl FnMut(&mut HtmTxn<'_, 'c, 'm>) -> Result<R, HtmAbort>,
    ) -> R {
        let mut attempt = 0u32;
        loop {
            match self.attempt_atomic(&mut f) {
                Ok(r) => return r,
                Err(_) => {
                    let base = 32u64 << attempt.min(8);
                    let wait = base + self.next_rand() % base;
                    self.cpu.tick(wait);
                    attempt += 1;
                }
            }
        }
    }

    /// Runs one hardware attempt of `f`.
    ///
    /// # Errors
    ///
    /// Returns the abort cause if the attempt could not commit; speculative
    /// state is discarded.
    pub fn attempt_atomic<R>(
        &mut self,
        f: impl FnOnce(&mut HtmTxn<'_, 'c, 'm>) -> Result<R, HtmAbort>,
    ) -> Result<R, HtmAbort> {
        self.cpu.clear_watches();
        self.cpu.trace(hastm_sim::TraceEvent::HtmBegin);
        self.cpu.exec(2); // txn begin setup
        self.cpu.tick(8); // hardware checkpoint (register/state snapshot)
        let mut txn = HtmTxn {
            thread: self,
            buffer: HashMap::new(),
            order: Vec::new(),
        };
        let result = f(&mut txn);
        let (buffer, order) = (txn.buffer, txn.order);
        match result {
            Ok(r) => match self.try_commit(&buffer, &order) {
                Ok(()) => {
                    self.stats.commits += 1;
                    self.cpu.trace(hastm_sim::TraceEvent::HtmCommit);
                    Ok(r)
                }
                Err(cause) => {
                    self.record_abort(cause);
                    Err(cause)
                }
            },
            Err(cause) => {
                self.cpu.clear_watches();
                self.record_abort(cause);
                Err(cause)
            }
        }
    }

    fn record_abort(&mut self, cause: HtmAbort) {
        match cause {
            HtmAbort::Conflict => self.stats.aborts_conflict += 1,
            HtmAbort::Capacity => self.stats.aborts_capacity += 1,
            HtmAbort::Explicit => self.stats.aborts_explicit += 1,
            HtmAbort::Spurious => self.stats.aborts_spurious += 1,
        }
        self.cpu.trace(hastm_sim::TraceEvent::HtmAbort {
            cause: match cause {
                HtmAbort::Conflict => "conflict",
                HtmAbort::Capacity => "capacity",
                HtmAbort::Explicit => "explicit",
                HtmAbort::Spurious => "spurious",
            },
        });
    }

    fn try_commit(&mut self, buffer: &HashMap<Addr, u64>, order: &[Addr]) -> Result<(), HtmAbort> {
        self.cpu.exec(2); // commit sequence
        self.cpu.tick(8); // hardware commit (ordering point)
                          // The violation re-check and the write-back publish as ONE
                          // indivisible step; otherwise two transactions that both passed
                          // their checks could interleave write-backs and lose updates.
        let writes: Vec<(Addr, u64)> = order
            .iter()
            .filter_map(|a| buffer.get(a).map(|&v| (*a, v)))
            .collect();
        // The clock before the commit op is the op's start — the instant
        // the stores publish.
        let publish_clock = self.cpu.now();
        let olds = self.cpu.commit_stores(&writes).map_err(|v| match v.cause {
            ViolationCause::Eviction => HtmAbort::Capacity,
            ViolationCause::Spurious => HtmAbort::Spurious,
            _ => HtmAbort::Conflict,
        })?;
        self.last_commit = (
            publish_clock,
            writes
                .iter()
                .zip(&olds)
                .map(|(&(addr, new), &old)| (addr, old, new))
                .collect(),
        );
        Ok(())
    }
}

impl<'m> HtmTxn<'_, '_, 'm> {
    /// The underlying simulated CPU (e.g. for gated heap allocation).
    pub fn cpu(&mut self) -> &mut Cpu<'m> {
        self.thread.cpu
    }
}

impl HtmTxn<'_, '_, '_> {
    /// Transactionally loads a word.
    ///
    /// # Errors
    ///
    /// Returns the abort cause if the transaction has already been doomed
    /// by a conflict or capacity event (eager abort detection).
    pub fn read(&mut self, addr: Addr) -> Result<u64, HtmAbort> {
        if let Some(&v) = self.buffer.get(&addr) {
            self.thread.cpu.exec(1); // store-buffer forward
            return Ok(v);
        }
        // Load and watch in one logical-time step: a remote commit landing
        // between a load and a later watch would escape conflict detection.
        let v = self.thread.cpu.load_watch_u64(addr, WatchKind::Read);
        self.check()?;
        Ok(v)
    }

    /// Transactionally stores a word (buffered until commit).
    ///
    /// # Errors
    ///
    /// Returns the abort cause if the transaction is already doomed.
    pub fn write(&mut self, addr: Addr, value: u64) -> Result<(), HtmAbort> {
        // Bring the line in (a real HTM writes into the L1 speculatively)
        // and track it for conflicts, in one logical-time step.
        self.thread.cpu.load_watch_u64(addr, WatchKind::Write);
        if !self.buffer.contains_key(&addr) {
            self.order.push(addr);
        }
        self.buffer.insert(addr, value);
        self.check()?;
        Ok(())
    }

    /// Explicitly aborts.
    ///
    /// # Errors
    ///
    /// Always returns `Err(HtmAbort::Explicit)`.
    pub fn abort<R>(&mut self) -> Result<R, HtmAbort> {
        Err(HtmAbort::Explicit)
    }

    /// Words currently buffered.
    pub fn write_set_len(&self) -> usize {
        self.order.len()
    }

    /// Executes instructions inside the transaction (ILP-amortized).
    pub fn thread_tick(&mut self, cycles: u64) {
        self.thread.cpu.exec(cycles);
    }

    /// Charges raw stall cycles (un-amortizable dependent chains).
    pub fn thread_stall(&mut self, cycles: u64) {
        self.thread.cpu.tick(cycles);
    }

    /// Whether the transaction is already doomed.
    ///
    /// # Errors
    ///
    /// Returns the pending abort cause, if any.
    pub fn status(&mut self) -> Result<(), HtmAbort> {
        self.check()
    }

    fn check(&mut self) -> Result<(), HtmAbort> {
        match self.thread.cpu.violation() {
            None => Ok(()),
            Some(v) => Err(match v.cause {
                ViolationCause::Eviction => HtmAbort::Capacity,
                ViolationCause::Spurious => HtmAbort::Spurious,
                _ => HtmAbort::Conflict,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hastm_sim::{CacheConfig, Machine, MachineConfig, WorkerFn};

    #[test]
    fn read_write_commit() {
        let mut m = Machine::new(MachineConfig::default());
        let heap = m.heap();
        let a = heap.alloc(8);
        let (v, _) = m.run_one(|cpu| {
            let mut th = HtmThread::new(cpu);
            th.atomic(|tx| {
                tx.write(a, 5)?;
                tx.read(a)
            })
        });
        assert_eq!(v, 5);
        assert_eq!(m.peek_u64(a), 5);
    }

    #[test]
    fn aborted_txn_leaves_memory_untouched() {
        let mut m = Machine::new(MachineConfig::default());
        let heap = m.heap();
        let a = heap.alloc(8);
        m.poke_u64(a, 1);
        m.run_one(|cpu| {
            let mut th = HtmThread::new(cpu);
            let r: Result<(), _> = th.attempt_atomic(|tx| {
                tx.write(a, 99)?;
                tx.abort()
            });
            assert_eq!(r, Err(HtmAbort::Explicit));
            assert_eq!(th.stats().aborts_explicit, 1);
        });
        assert_eq!(m.peek_u64(a), 1, "buffered store discarded");
    }

    #[test]
    fn speculative_reads_see_own_writes() {
        let mut m = Machine::new(MachineConfig::default());
        let heap = m.heap();
        let a = heap.alloc(8);
        let (v, _) = m.run_one(|cpu| {
            let mut th = HtmThread::new(cpu);
            th.atomic(|tx| {
                tx.write(a, 10)?;
                let x = tx.read(a)?;
                tx.write(a, x + 1)?;
                tx.read(a)
            })
        });
        assert_eq!(v, 11);
    }

    #[test]
    fn capacity_abort_on_overflow() {
        // Tiny L1: 2 sets x 2 ways = 4 lines. A 8-line transaction cannot
        // fit and must abort with Capacity.
        let mut m = Machine::new(MachineConfig {
            l1: CacheConfig::new(2, 2),
            ..MachineConfig::default()
        });
        let heap = m.heap();
        let base = heap.alloc_aligned(8 * 64, 64);
        m.run_one(|cpu| {
            let mut th = HtmThread::new(cpu);
            let r: Result<(), _> = th.attempt_atomic(|tx| {
                for i in 0..8 {
                    tx.read(Addr(base.0 + i * 64))?;
                }
                Ok(())
            });
            assert_eq!(r, Err(HtmAbort::Capacity));
            assert_eq!(th.stats().aborts_capacity, 1);
        });
    }

    #[test]
    fn remote_store_aborts_reader() {
        let mut m = Machine::new(MachineConfig::with_cores(2));
        let heap = m.heap();
        let a = heap.alloc(8);
        let outcome = std::sync::Mutex::new(None);
        let outcome_ref = &outcome;
        m.run(vec![
            Box::new(move |cpu: &mut hastm_sim::Cpu| {
                let mut th = HtmThread::new(cpu);
                let r: Result<(), _> = th.attempt_atomic(|tx| {
                    tx.read(a)?;
                    // Dawdle so the other core's store lands mid-txn.
                    for _ in 0..100 {
                        tx.thread_tick(100);
                    }
                    tx.read(a)?;
                    Ok(())
                });
                *outcome_ref.lock().unwrap() = Some(r);
            }) as WorkerFn<'_>,
            Box::new(move |cpu: &mut hastm_sim::Cpu| {
                cpu.tick(2_000);
                cpu.store_u64(a, 77);
            }) as WorkerFn<'_>,
        ]);
        assert_eq!(
            outcome.lock().unwrap().unwrap(),
            Err(HtmAbort::Conflict),
            "remote store must abort the hardware reader"
        );
    }

    #[test]
    fn remote_load_aborts_speculative_writer() {
        let mut m = Machine::new(MachineConfig::with_cores(2));
        let heap = m.heap();
        let a = heap.alloc(8);
        let outcome = std::sync::Mutex::new(None);
        let outcome_ref = &outcome;
        m.run(vec![
            Box::new(move |cpu: &mut hastm_sim::Cpu| {
                let mut th = HtmThread::new(cpu);
                let r: Result<(), _> = th.attempt_atomic(|tx| {
                    tx.write(a, 5)?;
                    for _ in 0..100 {
                        tx.thread_tick(100);
                    }
                    tx.read(a)?;
                    Ok(())
                });
                *outcome_ref.lock().unwrap() = Some(r);
            }) as WorkerFn<'_>,
            Box::new(move |cpu: &mut hastm_sim::Cpu| {
                cpu.tick(2_000);
                let _ = cpu.load_u64(a);
            }) as WorkerFn<'_>,
        ]);
        assert_eq!(outcome.lock().unwrap().unwrap(), Err(HtmAbort::Conflict));
    }

    #[test]
    fn write_buffer_capacity_is_bounded_by_cache() {
        // Speculatively written lines are watched; writing more distinct
        // lines than the L1 holds must abort with Capacity.
        let mut m = Machine::new(MachineConfig {
            l1: CacheConfig::new(2, 2),
            ..MachineConfig::default()
        });
        let heap = m.heap();
        let base = heap.alloc_aligned(16 * 64, 64);
        m.run_one(|cpu| {
            let mut th = HtmThread::new(cpu);
            let r: Result<(), _> = th.attempt_atomic(|tx| {
                for i in 0..8 {
                    tx.write(Addr(base.0 + i * 64), i)?;
                }
                Ok(())
            });
            assert_eq!(r, Err(HtmAbort::Capacity));
        });
        // Nothing leaked to memory.
        for i in 0..8 {
            assert_eq!(m.peek_u64(Addr(base.0 + i * 64)), 0);
        }
    }

    #[test]
    fn status_reports_doom_early() {
        let mut m = Machine::new(MachineConfig {
            l1: CacheConfig::new(2, 2),
            ..MachineConfig::default()
        });
        let heap = m.heap();
        let base = heap.alloc_aligned(16 * 64, 64);
        m.run_one(|cpu| {
            let mut th = HtmThread::new(cpu);
            let r: Result<(), _> = th.attempt_atomic(|tx| {
                for i in 0..8 {
                    let _ = tx.read(Addr(base.0 + i * 64));
                }
                tx.status()
            });
            assert_eq!(r, Err(HtmAbort::Capacity), "doom detected before commit");
        });
    }

    #[test]
    fn write_set_len_counts_distinct_words() {
        let mut m = Machine::new(MachineConfig::default());
        let heap = m.heap();
        let a = heap.alloc(16);
        m.run_one(|cpu| {
            let mut th = HtmThread::new(cpu);
            th.atomic(|tx| {
                tx.write(a, 1)?;
                tx.write(a, 2)?; // same word: buffered once
                tx.write(a.offset(8), 3)?;
                assert_eq!(tx.write_set_len(), 2);
                Ok(())
            });
        });
        assert_eq!(m.peek_u64(a), 2);
        assert_eq!(m.peek_u64(a.offset(8)), 3);
    }

    #[test]
    fn atomic_retries_until_commit() {
        // Conflicting increments from two cores must still sum correctly.
        let mut m = Machine::new(MachineConfig::with_cores(2));
        let heap = m.heap();
        let a = heap.alloc(8);
        let workers: Vec<WorkerFn<'_>> = (0..2)
            .map(|_| {
                Box::new(move |cpu: &mut hastm_sim::Cpu| {
                    let mut th = HtmThread::new(cpu);
                    for _ in 0..25 {
                        th.atomic(|tx| {
                            let v = tx.read(a)?;
                            tx.write(a, v + 1)
                        });
                    }
                }) as WorkerFn<'_>
            })
            .collect();
        m.run(workers);
        assert_eq!(m.peek_u64(a), 50);
    }
}
