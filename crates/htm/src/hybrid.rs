//! Best-case hybrid transactional memory (HyTM), after Figure 14 and
//! \[17\]\[23\]\[29\].
//!
//! A transaction first executes in hardware. Inside the hardware
//! transaction, every read checks that the datum's transaction record is
//! in the shared state (so no concurrent *software* transaction owns it),
//! and every write additionally logs the record so the commit can bump its
//! version number — notifying concurrent software transactions of the
//! update. If hardware execution keeps failing, the transaction falls back
//! to the full software STM.
//!
//! This is the paper's comparison baseline; its key structural contrast
//! with HASTM is that **the software path gets no hardware help at all**,
//! and the hardware path inherits all HTM restrictions (capacity,
//! context-switch intolerance, spurious aborts).

use hastm::{
    Abort, Granularity, ObjRef, OracleMode, RecValue, StmRuntime, TmContext, TxResult, TxThread,
};
use hastm_sim::{Addr, Cpu};

use crate::htm::{HtmAbort, HtmThread, HtmTxn};

/// Counters for one hybrid thread.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HytmStats {
    /// Transactions committed on the hardware path.
    pub hw_commits: u64,
    /// Transactions that fell back to and committed on the software path.
    pub sw_commits: u64,
    /// Hardware attempts aborted by conflicts (coherence or a record owned
    /// by a software transaction).
    pub hw_aborts_conflict: u64,
    /// Hardware attempts aborted by capacity/eviction.
    pub hw_aborts_capacity: u64,
    /// Hardware attempts aborted by injected transient events
    /// ([`HtmAbort::Spurious`]); retried in hardware like conflicts, but
    /// counted separately so fault-injection coverage can observe them.
    pub hw_aborts_spurious: u64,
}

/// One thread's hybrid-TM execution state (hardware first, software STM
/// fallback).
pub struct HytmThread<'c, 'm> {
    tx: TxThread<'c, 'm>,
    hw_attempts: u32,
    stats: HytmStats,
}

impl std::fmt::Debug for HytmThread<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HytmThread")
            .field("hw_attempts", &self.hw_attempts)
            .field("stats", &self.stats)
            .finish()
    }
}

impl<'c, 'm> HytmThread<'c, 'm> {
    /// Creates a hybrid thread that tries hardware `hw_attempts` times per
    /// transaction before falling back to software.
    pub fn new(runtime: &'c StmRuntime, cpu: &'c mut Cpu<'m>, hw_attempts: u32) -> Self {
        HytmThread {
            tx: TxThread::new(runtime, cpu),
            hw_attempts,
            stats: HytmStats::default(),
        }
    }

    /// This thread's statistics.
    pub fn stats(&self) -> &HytmStats {
        &self.stats
    }

    /// The underlying software-transaction thread (fallback path).
    pub fn software(&mut self) -> &mut TxThread<'c, 'm> {
        &mut self.tx
    }

    /// Allocates an object outside any transaction.
    pub fn alloc_obj(&mut self, data_words: u32) -> ObjRef {
        self.tx.alloc_obj(data_words)
    }

    /// Runs `f` as a transaction: hardware first, software on repeated
    /// hardware failure. Retries until commit.
    pub fn atomic<R>(&mut self, mut f: impl FnMut(&mut dyn TmContext) -> TxResult<R>) -> R {
        let runtime = self.tx.runtime();
        for attempt in 0..self.hw_attempts {
            let mut hth = HtmThread::new(self.tx.cpu());
            let outcome = hth.attempt_atomic(|txn| {
                let mut ctx = HybridHwCtx {
                    txn,
                    runtime,
                    written: Vec::new(),
                };
                let r = f(&mut ctx).map_err(|_| {
                    // TmContext reported failure; surface the hardware
                    // cause if there is one, else treat as a conflict with
                    // a software transaction.
                    ctx.txn.status().err().unwrap_or(HtmAbort::Conflict)
                })?;
                // Bump the version of every written record inside the
                // hardware transaction so concurrent software readers
                // observe the update (Figure 14's commit obligation).
                for (rec, ver) in std::mem::take(&mut ctx.written) {
                    ctx.txn.write(rec, RecValue(ver).bump().0)?;
                }
                Ok(r)
            });
            match outcome {
                Ok(r) => {
                    self.stats.hw_commits += 1;
                    if runtime.config().oracle != OracleMode::Off {
                        // Journal the hardware commit's write transitions so
                        // concurrent software transactions' reads of them
                        // verify (see hastm::oracle). Record and data
                        // addresses both land in the journal; only data
                        // addresses are ever looked up.
                        let (clock, writes) = hth.last_commit();
                        let writes = writes.to_vec();
                        drop(hth);
                        let epoch = self.tx.cpu().run_epoch();
                        runtime.oracle_log().record_commit(epoch, clock, &writes);
                    }
                    return r;
                }
                Err(HtmAbort::Capacity) => self.stats.hw_aborts_capacity += 1,
                Err(HtmAbort::Spurious) => self.stats.hw_aborts_spurious += 1,
                Err(_) => self.stats.hw_aborts_conflict += 1,
            }
            let wait = 64u64 << attempt.min(8);
            self.tx.cpu().tick(wait);
        }
        // Software fallback: the plain STM, unaccelerated.
        let r = self.tx.atomic(|tx| f(tx));
        self.stats.sw_commits += 1;
        r
    }
}

/// [`TmContext`] implementation for the hardware path.
struct HybridHwCtx<'x, 't, 'c, 'm> {
    txn: &'x mut HtmTxn<'t, 'c, 'm>,
    runtime: &'x StmRuntime,
    /// Records written by this transaction and their pre-write versions.
    written: Vec<(Addr, u64)>,
}

impl HybridHwCtx<'_, '_, '_, '_> {
    fn record_for(&mut self, obj: ObjRef, addr: Addr) -> Addr {
        match self.runtime.config().granularity {
            Granularity::Object => obj.header(),
            Granularity::CacheLine => {
                self.txn.thread_tick(3); // hash sequence
                self.runtime.rec_table().record_for(addr)
            }
        }
    }

    /// Figure 14's shared-state check: load the record inside the hardware
    /// transaction (so it is watched) and verify no software transaction
    /// owns it.
    fn check_record(&mut self, rec: Addr) -> TxResult<u64> {
        let recval = self.txn.read(rec).map_err(|_| Abort::Conflict)?;
        self.txn.thread_tick(2); // isShared test + branch
                                 // The shared-state test is a dependent load->test->branch chain on
                                 // the critical path of every access; unlike the STM's barrier (whose
                                 // logging is independent work the OOO core overlaps, §7.3), nothing
                                 // hides its resolution.
        self.txn.thread_stall(2);
        if !RecValue(recval).is_version() {
            // Owned by a software transaction: contention policy aborts the
            // hardware attempt.
            return Err(Abort::Conflict);
        }
        Ok(recval)
    }
}

impl TmContext for HybridHwCtx<'_, '_, '_, '_> {
    fn ctx_read(&mut self, obj: ObjRef, index: u32) -> TxResult<u64> {
        let addr = obj.word(index);
        // HybridRead is an out-of-line barrier function (Figure 14), unlike
        // the *inlined* STM/HASTM sequences of Figures 4-9: call, prologue,
        // return.
        self.txn.thread_tick(4);
        self.txn.thread_tick(1); // gettxnrec table-base / TLS access
        let rec = self.record_for(obj, addr);
        self.check_record(rec)?;
        self.txn.read(addr).map_err(|_| Abort::Conflict)
    }

    fn ctx_write(&mut self, obj: ObjRef, index: u32, value: u64) -> TxResult<()> {
        let addr = obj.word(index);
        self.txn.thread_tick(4); // HybridWrite call overhead (Figure 14)
        self.txn.thread_tick(1); // gettxnrec table-base / TLS access
        let rec = self.record_for(obj, addr);
        let recval = self.check_record(rec)?;
        if !self.written.iter().any(|&(r, _)| r == rec) {
            self.txn.thread_tick(2); // logWrite
            self.written.push((rec, recval));
        }
        self.txn.write(addr, value).map_err(|_| Abort::Conflict)
    }

    fn ctx_alloc(&mut self, data_words: u32) -> ObjRef {
        let (obj, header) = self.runtime.alloc_obj_shell(self.txn.cpu(), data_words);
        // Initialize the header inside the transaction; if the hardware
        // transaction aborts, the unpublished object is simply discarded.
        let _ = self.txn.write(obj.header(), header);
        obj
    }

    fn ctx_guard(&mut self) -> TxResult<()> {
        self.txn.status().map_err(|_| Abort::Conflict)
    }

    fn ctx_work(&mut self, cycles: u64) {
        self.txn.thread_tick(cycles);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hastm::StmConfig;
    use hastm_sim::{CacheConfig, Machine, MachineConfig, WorkerFn};

    fn setup(cfg: StmConfig) -> (Machine, StmRuntime) {
        let mut m = Machine::new(MachineConfig::with_cores(2));
        let rt = StmRuntime::new(&mut m, cfg);
        (m, rt)
    }

    #[test]
    fn hybrid_commits_in_hardware() {
        let (mut m, rt) = setup(StmConfig::stm(Granularity::CacheLine));
        let (v, _) = m.run_one(|cpu| {
            let mut hy = HytmThread::new(&rt, cpu, 4);
            let o = hy.alloc_obj(1);
            hy.atomic(|ctx| {
                ctx.ctx_write(o, 0, 7)?;
                ctx.ctx_read(o, 0)
            });
            let v = hy.atomic(|ctx| ctx.ctx_read(o, 0));
            assert_eq!(hy.stats().hw_commits, 2);
            assert_eq!(hy.stats().sw_commits, 0);
            v
        });
        assert_eq!(v, 7);
    }

    #[test]
    fn hybrid_bumps_record_versions() {
        // A software transaction that read the record before a hardware
        // commit must fail validation afterwards.
        let (mut m, rt) = setup(StmConfig::stm(Granularity::Object));
        m.run_one(|cpu| {
            let mut hy = HytmThread::new(&rt, cpu, 4);
            let o = hy.alloc_obj(1);
            let rec_before = hy.software().cpu().load_u64(o.header());
            hy.atomic(|ctx| ctx.ctx_write(o, 0, 1));
            let rec_after = hy.software().cpu().load_u64(o.header());
            assert_ne!(rec_before, rec_after, "version bumped by HW commit");
            assert!(RecValue(rec_after).is_version());
        });
    }

    #[test]
    fn hybrid_falls_back_to_software_on_capacity() {
        // L1 too small for the transaction: the HW path always aborts with
        // Capacity, the SW path commits.
        let mut m = Machine::new(MachineConfig {
            cores: 1,
            l1: CacheConfig::new(2, 2),
            ..MachineConfig::default()
        });
        let rt = StmRuntime::new(&mut m, StmConfig::stm(Granularity::CacheLine));
        m.run_one(|cpu| {
            let mut hy = HytmThread::new(&rt, cpu, 2);
            let objs: Vec<ObjRef> = {
                let tx = hy.software();
                (0..16)
                    .map(|_| {
                        let o = tx.alloc_obj(1);
                        // Spread across lines.
                        tx.cpu().store_u64(o.word(0), 0);
                        o
                    })
                    .collect()
            };
            let sum = hy.atomic(|ctx| {
                let mut s = 0;
                for o in &objs {
                    s += ctx.ctx_read(*o, 0)?;
                    ctx.ctx_write(*o, 0, 1)?;
                }
                Ok(s)
            });
            assert_eq!(sum, 0);
            assert_eq!(hy.stats().sw_commits, 1, "fell back to software");
            assert_eq!(hy.stats().hw_aborts_capacity, 2);
        });
    }

    #[test]
    fn hardware_aborts_when_software_owns_record() {
        // Core 1 holds a record in a software transaction while core 0
        // tries a hardware transaction on the same object.
        let (mut m, rt) = setup(StmConfig::stm(Granularity::Object));
        let (o, _) = m.run_one(|cpu| {
            let mut tx = TxThread::new(&rt, cpu);
            tx.alloc_obj(1)
        });
        let rt_ref = &rt;
        m.run(vec![
            Box::new(move |cpu: &mut hastm_sim::Cpu| {
                // Give core 1 time to acquire the record.
                cpu.tick(5_000);
                let mut hy = HytmThread::new(rt_ref, cpu, 1);
                let v = hy.atomic(|ctx| ctx.ctx_read(o, 0));
                // Fell back to software (which waits out the owner).
                assert_eq!(hy.stats().hw_aborts_conflict, 1);
                assert_eq!(hy.stats().sw_commits, 1);
                assert_eq!(v, 9);
            }) as WorkerFn<'_>,
            Box::new(move |cpu: &mut hastm_sim::Cpu| {
                let mut tx = TxThread::new(rt_ref, cpu);
                tx.atomic(|tx| {
                    tx.write_word(o, 0, 9)?;
                    // Hold ownership long enough for core 0's HW attempt.
                    tx.cpu().tick(50_000);
                    Ok(())
                });
            }) as WorkerFn<'_>,
        ]);
    }

    #[test]
    fn concurrent_hybrid_increments_are_atomic() {
        let (mut m, rt) = setup(StmConfig::stm(Granularity::CacheLine));
        let (o, _) = m.run_one(|cpu| {
            let mut tx = TxThread::new(&rt, cpu);
            let o = tx.alloc_obj(1);
            tx.atomic(|tx| tx.write_word(o, 0, 0));
            o
        });
        let rt_ref = &rt;
        let workers: Vec<WorkerFn<'_>> = (0..2)
            .map(|_| {
                Box::new(move |cpu: &mut hastm_sim::Cpu| {
                    let mut hy = HytmThread::new(rt_ref, cpu, 4);
                    for _ in 0..20 {
                        hy.atomic(|ctx| {
                            let v = ctx.ctx_read(o, 0)?;
                            ctx.ctx_write(o, 0, v + 1)
                        });
                    }
                }) as WorkerFn<'_>
            })
            .collect();
        m.run(workers);
        let (v, _) = m.run_one(|cpu| {
            let mut tx = TxThread::new(&rt, cpu);
            tx.atomic(|tx| tx.read_word(o, 0))
        });
        assert_eq!(v, 40);
    }
}
