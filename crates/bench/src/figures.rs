//! Runners regenerating each evaluation figure of the paper.
//!
//! Absolute cycle counts are a property of this simulator, not of the
//! authors' (proprietary) one; what these runners reproduce — and what
//! `EXPERIMENTS.md` compares — is each figure's *shape*: who wins, by
//! roughly what factor, and where the crossovers fall.
//!
//! ## Cells
//!
//! Every figure is decomposed into [`Cell`]s — hashable descriptions of
//! one simulator run. [`run_cell`] maps a cell to its [`CellOutput`]
//! deterministically (same cell, same output, always), which is what lets
//! the parallel sweep in [`crate::sweep`] execute cells on host threads in
//! any order and still render bit-identical tables: each `figNN_with`
//! builder only *declares* which cells it needs and how to fold their
//! outputs into a [`Table`]; where the outputs come from is the resolver's
//! business.

use std::collections::{HashMap, HashSet};

use hastm::Granularity;
use hastm_sim::{CacheConfig, GateMode, MachineConfig};
use hastm_workloads::{
    analyze, generate_stream, run_kernel_gated, run_workload_spec, KernelParams, KernelResult,
    Scheme, SpecTelemetry, Structure, WorkloadConfig, WorkloadResult, PROFILES,
};

use crate::table::{pct, ratio, Table};
use crate::Scale;

/// Named machine description used by a cell (kept as an enum rather than a
/// [`MachineConfig`] so cells stay cheap to hash and compare).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum MachinePreset {
    /// The default machine of the single-thread figures.
    Default,
    /// The multi-core scaling machine (Figures 18-20): a next-line
    /// prefetcher and a modest shared inclusive L2 give cross-core
    /// interference without starving a single core.
    Scaling,
    /// The spurious-abort machine (Figures 21-22): a paper-era small L1
    /// plus a small shared inclusive L2 maximize the two §7.4 interference
    /// sources — prefetches kicking out marked lines and inclusive-L2
    /// back-invalidations — which is the regime in which the naïve
    /// always-aggressive policy pays for its re-executions.
    Interference,
}

impl MachinePreset {
    /// The concrete machine description.
    pub fn config(self) -> MachineConfig {
        match self {
            MachinePreset::Default => MachineConfig::default(),
            MachinePreset::Scaling => MachineConfig {
                prefetch_next_line: true,
                ..MachineConfig::default()
            },
            MachinePreset::Interference => MachineConfig {
                l1: CacheConfig::new(64, 4),  // 16 KiB 4-way (paper-era P4-class L1)
                l2: CacheConfig::new(256, 8), // 128 KiB shared, inclusive
                prefetch_next_line: true,
                ..MachineConfig::default()
            },
        }
    }
}

/// One independently runnable simulator job. The identity of a cell fully
/// determines its output, so cells double as memoization keys.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Cell {
    /// A data-structure workload run (Figures 11, 12, 16-22).
    Ds {
        /// Data structure under test.
        structure: Structure,
        /// Synchronization scheme.
        scheme: Scheme,
        /// Worker threads (= simulated cores).
        threads: usize,
        /// Experiment scale.
        scale: Scale,
        /// Machine description.
        machine: MachinePreset,
        /// Structure-size multiplier (scaling figures use 16 so
        /// transactions are long enough for interference to land inside).
        size_mult: u64,
    },
    /// A synthetic critical-section kernel replay (Figure 15).
    Kernel {
        /// Synchronization scheme.
        scheme: Scheme,
        /// Percent of memory operations that are loads.
        load_pct: u32,
        /// Load miss rate in percent (reuse is `100 - miss`).
        miss_pct: u32,
        /// Number of critical sections replayed.
        sections: u32,
    },
}

impl Cell {
    /// Short human label for progress reporting.
    pub fn label(&self) -> String {
        match self {
            Cell::Ds {
                structure,
                scheme,
                threads,
                machine,
                size_mult,
                ..
            } => format!(
                "{}/{} {}p{}{}",
                structure.label().to_lowercase(),
                scheme.label().to_lowercase(),
                threads,
                match machine {
                    MachinePreset::Default => "",
                    MachinePreset::Scaling => " scaling",
                    MachinePreset::Interference => " interference",
                },
                if *size_mult > 1 {
                    format!(" x{size_mult}")
                } else {
                    String::new()
                }
            ),
            Cell::Kernel {
                scheme,
                load_pct,
                miss_pct,
                ..
            } => format!(
                "kernel/{} load{} miss{}",
                scheme.label().to_lowercase(),
                load_pct,
                miss_pct
            ),
        }
    }

    /// Simulated cores the cell runs on (kernels are single-core replays).
    pub fn cores(&self) -> usize {
        match self {
            Cell::Ds { threads, .. } => *threads,
            Cell::Kernel { .. } => 1,
        }
    }
}

/// Output of one cell.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CellOutput {
    /// Output of a [`Cell::Ds`] run.
    Ds(WorkloadResult),
    /// Output of a [`Cell::Kernel`] run.
    Kernel(KernelResult),
}

impl CellOutput {
    /// Makespan in simulated cycles.
    pub fn cycles(&self) -> u64 {
        match self {
            CellOutput::Ds(r) => r.cycles,
            CellOutput::Kernel(r) => r.cycles,
        }
    }

    fn ds(&self) -> &WorkloadResult {
        match self {
            CellOutput::Ds(r) => r,
            CellOutput::Kernel(_) => panic!("expected a data-structure cell output"),
        }
    }
}

/// Runs one cell. Pure up to determinism: equal cells produce equal
/// outputs in any process, on any thread, in any order.
pub fn run_cell(cell: &Cell) -> CellOutput {
    run_cell_gated(cell, GateMode::default())
}

/// [`run_cell`] under an explicit gate admission mode. The two modes are
/// schedule-identical ([`GateMode`]), so for any cell the output must be
/// bit-equal across them — `crates/bench/tests/golden_parallel.rs` and the
/// CI gate-determinism job assert exactly that.
pub fn run_cell_gated(cell: &Cell, gate: GateMode) -> CellOutput {
    run_cell_spec(cell, gate).0
}

/// [`run_cell_gated`], also returning the cell's speculation telemetry.
/// The telemetry is a host-side observation (how the deterministic result
/// was obtained), kept out of [`CellOutput`] so outputs stay bit-comparable
/// across gate modes. Kernel cells are single-core and never speculate.
pub fn run_cell_spec(cell: &Cell, gate: GateMode) -> (CellOutput, SpecTelemetry) {
    match *cell {
        Cell::Ds {
            structure,
            scheme,
            threads,
            scale,
            machine,
            size_mult,
        } => {
            let mut cfg = WorkloadConfig::paper_default(structure, scheme, threads);
            // Total work is fixed across thread counts (scaling experiments
            // divide the same op budget among threads).
            let total_ops = scale.ops() * 4;
            cfg.ops_per_thread = (total_ops / threads as u64).max(1);
            cfg.prepopulate = scale.prepopulate() * size_mult;
            cfg.key_range = cfg.prepopulate * 2;
            cfg.granularity = Granularity::CacheLine;
            cfg.machine = machine.config();
            cfg.machine.gate = gate;
            if size_mult > 1 {
                // Scaling experiments: the adaptive watermark policy governs
                // HASTM at every thread count (the single-thread
                // always-aggressive policy would thrash on the interference
                // machine).
                cfg.mode_policy_override =
                    Some(hastm::ModePolicy::AbortRatioWatermark { watermark: 0.1 });
            }
            let (result, telemetry) = run_workload_spec(&cfg);
            (CellOutput::Ds(result), telemetry)
        }
        Cell::Kernel {
            scheme,
            load_pct,
            miss_pct,
            sections,
        } => {
            let params = KernelParams {
                load_pct,
                load_reuse_pct: 100 - miss_pct,
                store_reuse_pct: 40,
                sections,
                ..KernelParams::default()
            };
            let stream = generate_stream(&params);
            (
                CellOutput::Kernel(run_kernel_gated(scheme, &stream, gate)),
                SpecTelemetry::default(),
            )
        }
    }
}

/// A memoizing serial resolver: runs each distinct cell once, in calling
/// order, on the current thread. The `figNN(scale)` entry points use one
/// of these, so repeated cells (e.g. a figure's shared baseline) cost one
/// simulation.
pub fn serial_resolver() -> impl FnMut(&Cell) -> CellOutput {
    let mut memo: HashMap<Cell, CellOutput> = HashMap::new();
    move |cell: &Cell| {
        memo.entry(cell.clone())
            .or_insert_with(|| run_cell(cell))
            .clone()
    }
}

/// Cell accumulator that preserves first-seen order while dropping
/// duplicates (figures reuse baselines across rows).
#[derive(Default)]
struct CellList {
    seen: HashSet<Cell>,
    cells: Vec<Cell>,
}

impl CellList {
    fn push(&mut self, cell: Cell) {
        if self.seen.insert(cell.clone()) {
            self.cells.push(cell);
        }
    }

    fn into_vec(self) -> Vec<Cell> {
        self.cells
    }
}

fn ds_cell(structure: Structure, scheme: Scheme, threads: usize, scale: Scale) -> Cell {
    Cell::Ds {
        structure,
        scheme,
        threads,
        scale,
        machine: MachinePreset::Default,
        size_mult: 1,
    }
}

fn scaled_cell(
    structure: Structure,
    scheme: Scheme,
    threads: usize,
    scale: Scale,
    machine: MachinePreset,
) -> Cell {
    Cell::Ds {
        structure,
        scheme,
        threads,
        scale,
        machine,
        size_mult: 16,
    }
}

fn thread_counts(scale: Scale, deep: bool) -> Vec<usize> {
    match (scale, deep) {
        (Scale::Quick, _) => vec![1, 2, 4],
        (_, false) => vec![1, 2, 4],
        (Scale::Standard, true) => vec![1, 2, 4, 8],
        (Scale::Full, true) => vec![1, 2, 4, 8, 16],
    }
}

/// Cells of Figure 11.
pub fn fig11_cells(scale: Scale) -> Vec<Cell> {
    let threads = thread_counts(scale, true);
    let mut cells = CellList::default();
    for structure in Structure::ALL {
        cells.push(ds_cell(structure, Scheme::Lock, 1, scale));
        for scheme in [Scheme::Lock, Scheme::Stm] {
            for &t in &threads {
                cells.push(ds_cell(structure, scheme, t, scale));
            }
        }
    }
    cells.into_vec()
}

/// Figure 11 rendered through `run` (see module docs).
pub fn fig11_with(scale: Scale, run: &mut dyn FnMut(&Cell) -> CellOutput) -> Table {
    let threads = thread_counts(scale, true);
    let mut headers = vec!["series".to_string()];
    headers.extend(threads.iter().map(|t| format!("{t}p")));
    let mut table = Table {
        title: "Figure 11: STM vs lock scaling on TM workloads".into(),
        headers,
        rows: vec![],
        notes: vec![],
    };
    for structure in Structure::ALL {
        let lock1 = run(&ds_cell(structure, Scheme::Lock, 1, scale)).cycles();
        for scheme in [Scheme::Lock, Scheme::Stm] {
            let mut row = vec![format!("{structure}_{}", scheme.label().to_lowercase())];
            for &t in &threads {
                let r = run(&ds_cell(structure, scheme, t, scale));
                row.push(ratio(r.cycles(), lock1));
            }
            table.rows.push(row);
        }
    }
    table.note("relative to 1-thread lock; expected: locks flat/degrading, STM ~2x at 1p but scaling down with cores");
    table
}

/// Figure 11: STM (cache-line granularity, coarse atomic sections) versus
/// coarse-grained locks as processors scale. Times are relative to the
/// single-thread lock time of the same structure.
pub fn fig11(scale: Scale) -> Table {
    fig11_with(scale, &mut serial_resolver())
}

/// Cells of Figure 12.
pub fn fig12_cells(scale: Scale) -> Vec<Cell> {
    Structure::ALL
        .iter()
        .map(|&s| ds_cell(s, Scheme::Stm, 1, scale))
        .collect()
}

/// Figure 12 rendered through `run`.
pub fn fig12_with(scale: Scale, run: &mut dyn FnMut(&Cell) -> CellOutput) -> Table {
    let mut table = Table::new(
        "Figure 12: STM execution time breakdown (single thread, % of transactional time)",
        &[
            "structure",
            "rdbar%",
            "validate%",
            "commit%",
            "wrbar%",
            "tls%",
            "app%",
        ],
    );
    for structure in Structure::ALL {
        let out = run(&ds_cell(structure, Scheme::Stm, 1, scale));
        let r = out.ds();
        let b = &r.txn.breakdown;
        let total = b.total().max(1) as f64;
        table.row(vec![
            structure.to_string(),
            pct(b.read_barrier as f64 / total),
            pct(b.validate as f64 / total),
            pct(b.commit as f64 / total),
            pct(b.write_barrier as f64 / total),
            pct(b.tls as f64 / total),
            pct(b.app as f64 / total),
        ]);
    }
    table.note("expected: read barrier + validation dominate the STM overhead (§7.1)");
    table
}

/// Figure 12: where the base STM's time goes (read barrier, validation,
/// commit, write barrier, TLS access, application), single thread.
pub fn fig12(scale: Scale) -> Table {
    fig12_with(scale, &mut serial_resolver())
}

/// Figure 13: critical-section load fraction and cache reuse across the
/// Java/pthreads workload profiles. (Pure trace analysis — no simulator
/// cells.)
pub fn fig13() -> Table {
    let mut table = Table::new(
        "Figure 13: ratio of loads and cache reuse inside critical sections",
        &["workload", "loads%", "load_reuse%", "store_reuse%"],
    );
    for p in PROFILES {
        let a = analyze(&generate_stream(&p.params(0x13)));
        table.row(vec![
            p.name.to_string(),
            pct(a.load_fraction),
            pct(a.load_reuse),
            pct(a.store_reuse),
        ]);
    }
    table
        .note("expected: loads >70% of memory ops in almost all workloads; load reuse mostly >50%");
    table
}

const FIG14_SCHEMES: [Scheme; 3] = [Scheme::Hytm, Scheme::Hastm, Scheme::Stm];

/// Cells of Figure 14.
pub fn fig14_cells(scale: Scale) -> Vec<Cell> {
    scaling_cells(
        Structure::Bst,
        &FIG14_SCHEMES,
        scale,
        MachinePreset::Scaling,
    )
}

/// Figure 14 rendered through `run`.
pub fn fig14_with(scale: Scale, run: &mut dyn FnMut(&Cell) -> CellOutput) -> Table {
    scaling_figure(
        "Figure 14: best-case HyTM scaling vs HASTM and STM (BST)",
        Structure::Bst,
        &FIG14_SCHEMES,
        scale,
        MachinePreset::Scaling,
        "expected: best-case HyTM fastest (hardware barriers are free); HASTM lands between HyTM and STM",
        run,
    )
}

/// Figure 14: multi-core BST scaling of best-case HyTM against HASTM and
/// the base STM (relative to single-core lock time). The HyTM rows are
/// the paper's upper bound for a hybrid scheme: every transaction fits in
/// hardware, so software barriers vanish entirely.
pub fn fig14(scale: Scale) -> Table {
    fig14_with(scale, &mut serial_resolver())
}

const FIG15_MISSES: [u32; 3] = [60, 50, 40];
const FIG15_LOADS: [u32; 4] = [60, 70, 80, 90];
const FIG15_SCHEMES: [Scheme; 4] = [
    Scheme::Stm,
    Scheme::HastmCautious,
    Scheme::Hastm,
    Scheme::Hytm,
];

fn kernel_cell(scheme: Scheme, load_pct: u32, miss_pct: u32, scale: Scale) -> Cell {
    Cell::Kernel {
        scheme,
        load_pct,
        miss_pct,
        sections: scale.sections(),
    }
}

/// Cells of Figure 15.
pub fn fig15_cells(scale: Scale) -> Vec<Cell> {
    let mut cells = CellList::default();
    for miss in FIG15_MISSES {
        for load in FIG15_LOADS {
            for scheme in FIG15_SCHEMES {
                cells.push(kernel_cell(scheme, load, miss, scale));
            }
        }
    }
    cells.into_vec()
}

/// Figure 15 rendered through `run`.
pub fn fig15_with(scale: Scale, run: &mut dyn FnMut(&Cell) -> CellOutput) -> Table {
    let mut table = Table::new(
        "Figure 15: TM performance comparison (execution time relative to STM)",
        &["miss%", "load%", "Cautious", "HASTM", "Hybrid"],
    );
    for miss in FIG15_MISSES {
        for load in FIG15_LOADS {
            let stm = run(&kernel_cell(Scheme::Stm, load, miss, scale)).cycles();
            let cautious = run(&kernel_cell(Scheme::HastmCautious, load, miss, scale)).cycles();
            let hastm = run(&kernel_cell(Scheme::Hastm, load, miss, scale)).cycles();
            let hybrid = run(&kernel_cell(Scheme::Hytm, load, miss, scale)).cycles();
            table.row(vec![
                miss.to_string(),
                load.to_string(),
                ratio(cautious, stm),
                ratio(hastm, stm),
                ratio(hybrid, stm),
            ]);
        }
    }
    table.note("expected: HASTM >= Hybrid at 60% reuse (40% miss); within ~10% below at 40% reuse; cautious worst at low load/low reuse");
    table
}

/// Figure 15: synthetic-kernel comparison of Cautious / HASTM / Hybrid
/// against the STM baseline while sweeping load fraction (60–90 %) and
/// load miss rate (40–60 %, i.e. reuse 60–40 %).
pub fn fig15(scale: Scale) -> Table {
    fig15_with(scale, &mut serial_resolver())
}

const FIG16_SCHEMES: [Scheme; 4] = [Scheme::Hastm, Scheme::Hytm, Scheme::Stm, Scheme::Lock];

/// Cells of Figure 16.
pub fn fig16_cells(scale: Scale) -> Vec<Cell> {
    let mut cells = CellList::default();
    for structure in Structure::ALL {
        cells.push(ds_cell(structure, Scheme::Sequential, 1, scale));
        for scheme in FIG16_SCHEMES {
            cells.push(ds_cell(structure, scheme, 1, scale));
        }
    }
    cells.into_vec()
}

/// Figure 16 rendered through `run`.
pub fn fig16_with(scale: Scale, run: &mut dyn FnMut(&Cell) -> CellOutput) -> Table {
    let mut table = Table::new(
        "Figure 16: relative execution time for TM schemes (1 thread, vs sequential)",
        &["structure", "HASTM", "Hybrid-TM", "STM", "Lock"],
    );
    for structure in Structure::ALL {
        let seq = run(&ds_cell(structure, Scheme::Sequential, 1, scale)).cycles();
        let mut row = vec![structure.to_string()];
        for scheme in FIG16_SCHEMES {
            let cycles = run(&ds_cell(structure, scheme, 1, scale)).cycles();
            row.push(ratio(cycles, seq));
        }
        table.row(row);
    }
    table.note("expected: HASTM ~= Hybrid << STM; smallest HASTM gain on the hashtable (low reuse), largest on the btree (high reuse)");
    table
}

/// Figure 16: single-thread execution time of the TM schemes relative to
/// sequential execution.
pub fn fig16(scale: Scale) -> Table {
    fig16_with(scale, &mut serial_resolver())
}

const FIG17_SCHEMES: [Scheme; 4] = [
    Scheme::Hastm,
    Scheme::HastmCautious,
    Scheme::HastmNoReuse,
    Scheme::Stm,
];

/// Cells of Figure 17.
pub fn fig17_cells(scale: Scale) -> Vec<Cell> {
    let mut cells = CellList::default();
    for structure in Structure::ALL {
        cells.push(ds_cell(structure, Scheme::Sequential, 1, scale));
        for scheme in FIG17_SCHEMES {
            cells.push(ds_cell(structure, scheme, 1, scale));
        }
    }
    cells.into_vec()
}

/// Figure 17 rendered through `run`.
pub fn fig17_with(scale: Scale, run: &mut dyn FnMut(&Cell) -> CellOutput) -> Table {
    let mut table = Table::new(
        "Figure 17: performance breakdown for HASTM (1 thread, vs sequential)",
        &[
            "structure",
            "HASTM",
            "HASTM-Cautious",
            "HASTM-NoReuse",
            "STM",
        ],
    );
    for structure in Structure::ALL {
        let seq = run(&ds_cell(structure, Scheme::Sequential, 1, scale)).cycles();
        let mut row = vec![structure.to_string()];
        for scheme in FIG17_SCHEMES {
            let cycles = run(&ds_cell(structure, scheme, 1, scale)).cycles();
            row.push(ratio(cycles, seq));
        }
        table.row(row);
    }
    table.note("expected: hashtable gains come from log elimination + validation (NoReuse ~= HASTM), trees also from reuse; cautious-only can exceed STM time");
    table
}

/// Figure 17: HASTM ablation — full HASTM, cautious-only, and no-reuse
/// (filter disabled) against the STM, relative to sequential.
pub fn fig17(scale: Scale) -> Table {
    fig17_with(scale, &mut serial_resolver())
}

fn scaling_cells(
    structure: Structure,
    schemes: &[Scheme],
    scale: Scale,
    machine: MachinePreset,
) -> Vec<Cell> {
    let threads = thread_counts(scale, false);
    let mut cells = CellList::default();
    cells.push(scaled_cell(structure, Scheme::Lock, 1, scale, machine));
    for &scheme in schemes {
        for &t in &threads {
            cells.push(scaled_cell(structure, scheme, t, scale, machine));
        }
    }
    cells.into_vec()
}

fn scaling_figure(
    title: &str,
    structure: Structure,
    schemes: &[Scheme],
    scale: Scale,
    machine: MachinePreset,
    expected: &str,
    run: &mut dyn FnMut(&Cell) -> CellOutput,
) -> Table {
    let threads = thread_counts(scale, false);
    let mut headers = vec!["scheme".to_string()];
    headers.extend(threads.iter().map(|t| format!("{t} core")));
    let mut table = Table {
        title: title.into(),
        headers,
        rows: vec![],
        notes: vec![],
    };
    // Larger structures than the single-thread figures: transactions must
    // be long enough for cross-core interference to land inside them.
    let lock1 = run(&scaled_cell(structure, Scheme::Lock, 1, scale, machine)).cycles();
    for &scheme in schemes {
        let mut row = vec![scheme.label().to_string()];
        for &t in &threads {
            let r = run(&scaled_cell(structure, scheme, t, scale, machine));
            row.push(ratio(r.cycles(), lock1));
        }
        table.rows.push(row);
    }
    table.note(expected);
    table.note(match machine {
        MachinePreset::Default => "machine: default single-core machine",
        MachinePreset::Scaling => "machine: default caches + next-line prefetcher",
        MachinePreset::Interference => {
            "machine: next-line prefetcher + small shared inclusive L2 (interference sources of §7.4)"
        }
    });
    table
}

const SCALING_SCHEMES: [Scheme; 3] = [Scheme::Hastm, Scheme::Stm, Scheme::Lock];
const AGGRESSIVE_SCHEMES: [Scheme; 3] = [Scheme::Hastm, Scheme::NaiveAggressive, Scheme::Stm];

/// Cells of Figure 18.
pub fn fig18_cells(scale: Scale) -> Vec<Cell> {
    scaling_cells(
        Structure::Bst,
        &SCALING_SCHEMES,
        scale,
        MachinePreset::Scaling,
    )
}

/// Figure 18 rendered through `run`.
pub fn fig18_with(scale: Scale, run: &mut dyn FnMut(&Cell) -> CellOutput) -> Table {
    scaling_figure(
        "Figure 18: multi-core scaling for BST",
        Structure::Bst,
        &SCALING_SCHEMES,
        scale,
        MachinePreset::Scaling,
        "expected: HASTM best overall; coarse lock does not scale (root lock for rotations)",
        run,
    )
}

/// Figure 18: multi-core scaling for the BST (HASTM / STM / Lock, relative
/// to single-core lock time).
pub fn fig18(scale: Scale) -> Table {
    fig18_with(scale, &mut serial_resolver())
}

/// Cells of Figure 19.
pub fn fig19_cells(scale: Scale) -> Vec<Cell> {
    scaling_cells(
        Structure::BTree,
        &SCALING_SCHEMES,
        scale,
        MachinePreset::Scaling,
    )
}

/// Figure 19 rendered through `run`.
pub fn fig19_with(scale: Scale, run: &mut dyn FnMut(&Cell) -> CellOutput) -> Table {
    scaling_figure(
        "Figure 19: multi-core scaling for Btree",
        Structure::BTree,
        &SCALING_SCHEMES,
        scale,
        MachinePreset::Scaling,
        "expected: HASTM still best, but its edge over STM shrinks with cores (marked lines lost to cross-core interference force software validation)",
        run,
    )
}

/// Figure 19: multi-core scaling for the B-tree.
pub fn fig19(scale: Scale) -> Table {
    fig19_with(scale, &mut serial_resolver())
}

/// Cells of Figure 20.
pub fn fig20_cells(scale: Scale) -> Vec<Cell> {
    scaling_cells(
        Structure::HashTable,
        &SCALING_SCHEMES,
        scale,
        MachinePreset::Scaling,
    )
}

/// Figure 20 rendered through `run`.
pub fn fig20_with(scale: Scale, run: &mut dyn FnMut(&Cell) -> CellOutput) -> Table {
    scaling_figure(
        "Figure 20: multi-core scaling for hash table",
        Structure::HashTable,
        &SCALING_SCHEMES,
        scale,
        MachinePreset::Scaling,
        "expected: low contention; HASTM scales as well as STM and stays fastest",
        run,
    )
}

/// Figure 20: multi-core scaling for the hash table (low contention).
pub fn fig20(scale: Scale) -> Table {
    fig20_with(scale, &mut serial_resolver())
}

/// Cells of Figure 21.
pub fn fig21_cells(scale: Scale) -> Vec<Cell> {
    scaling_cells(
        Structure::Bst,
        &AGGRESSIVE_SCHEMES,
        scale,
        MachinePreset::Interference,
    )
}

/// Figure 21 rendered through `run`.
pub fn fig21_with(scale: Scale, run: &mut dyn FnMut(&Cell) -> CellOutput) -> Table {
    scaling_figure(
        "Figure 21: BST scaling (different TM schemes)",
        Structure::Bst,
        &AGGRESSIVE_SCHEMES,
        scale,
        MachinePreset::Interference,
        "expected: naive-aggressive scales worst (spurious aborts force re-executions); HASTM unaffected (stays cautious under interference)",
        run,
    )
}

/// Figure 21: BST scaling of HASTM versus the naïve always-aggressive
/// policy versus STM.
pub fn fig21(scale: Scale) -> Table {
    fig21_with(scale, &mut serial_resolver())
}

/// Cells of Figure 22.
pub fn fig22_cells(scale: Scale) -> Vec<Cell> {
    scaling_cells(
        Structure::BTree,
        &AGGRESSIVE_SCHEMES,
        scale,
        MachinePreset::Interference,
    )
}

/// Figure 22 rendered through `run`.
pub fn fig22_with(scale: Scale, run: &mut dyn FnMut(&Cell) -> CellOutput) -> Table {
    scaling_figure(
        "Figure 22: Btree scaling (different TM schemes)",
        Structure::BTree,
        &AGGRESSIVE_SCHEMES,
        scale,
        MachinePreset::Interference,
        "expected: same shape as Figure 21 on the btree",
        run,
    )
}

/// Figure 22: B-tree scaling of HASTM versus naïve-aggressive versus STM.
pub fn fig22(scale: Scale) -> Table {
    fig22_with(scale, &mut serial_resolver())
}

/// A figure's table builder: renders the table at the given scale,
/// requesting each cell's output through the resolver.
pub type BuildFn = fn(Scale, &mut dyn FnMut(&Cell) -> CellOutput) -> Table;

/// One figure in the registry: its cell declaration and its table builder.
#[derive(Copy, Clone)]
pub struct Figure {
    /// Short name (`fig11` ... `fig22`).
    pub name: &'static str,
    /// Cells the builder will request (deduplicated, declaration order).
    pub cells: fn(Scale) -> Vec<Cell>,
    /// Renders the table, requesting outputs through the resolver. The
    /// resolver must answer every cell in `cells` (the sweep precomputes
    /// exactly that set).
    pub build: BuildFn,
}

/// Every figure in presentation order. Figure 13 is pure trace analysis
/// and declares no cells.
pub const FIGURES: [Figure; 12] = [
    Figure {
        name: "fig11",
        cells: fig11_cells,
        build: fig11_with,
    },
    Figure {
        name: "fig12",
        cells: fig12_cells,
        build: fig12_with,
    },
    Figure {
        name: "fig13",
        cells: |_| Vec::new(),
        build: |_, _| fig13(),
    },
    Figure {
        name: "fig14",
        cells: fig14_cells,
        build: fig14_with,
    },
    Figure {
        name: "fig15",
        cells: fig15_cells,
        build: fig15_with,
    },
    Figure {
        name: "fig16",
        cells: fig16_cells,
        build: fig16_with,
    },
    Figure {
        name: "fig17",
        cells: fig17_cells,
        build: fig17_with,
    },
    Figure {
        name: "fig18",
        cells: fig18_cells,
        build: fig18_with,
    },
    Figure {
        name: "fig19",
        cells: fig19_cells,
        build: fig19_with,
    },
    Figure {
        name: "fig20",
        cells: fig20_cells,
        build: fig20_with,
    },
    Figure {
        name: "fig21",
        cells: fig21_cells,
        build: fig21_with,
    },
    Figure {
        name: "fig22",
        cells: fig22_cells,
        build: fig22_with,
    },
];

/// Every figure, in order, computed serially with one shared memo (cells
/// repeated across figures — e.g. the fig16/fig17 sequential baselines —
/// run once).
pub fn all_figures(scale: Scale) -> Vec<Table> {
    let mut resolver = serial_resolver();
    FIGURES
        .iter()
        .map(|f| (f.build)(scale, &mut resolver))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig13_has_twelve_rows() {
        let t = fig13();
        assert_eq!(t.rows.len(), 12);
        for r in 0..t.rows.len() {
            assert!(t.cell_f64(r, 1) > 60.0, "loads dominate");
        }
    }

    #[test]
    fn fig16_quick_shape() {
        let t = fig16(Scale::Quick);
        assert_eq!(t.rows.len(), 3);
        for r in 0..3 {
            let hastm = t.cell_f64(r, 1);
            let stm = t.cell_f64(r, 3);
            // The hashtable has almost no reuse, so HASTM's win there is
            // small (§7.3) and can be within noise at quick scale.
            let slack = if t.rows[r][0] == "Hashtable" {
                1.05
            } else {
                1.0
            };
            assert!(
                hastm < stm * slack,
                "HASTM must not lose to STM on {}: {hastm} vs {stm}",
                t.rows[r][0]
            );
            assert!(hastm >= 0.9, "HASTM cannot beat sequential: {hastm}");
        }
        // The btree's high reuse gives HASTM its largest win.
        let btree_gain = t.cell_f64(2, 3) / t.cell_f64(2, 1);
        let hash_gain = t.cell_f64(1, 3) / t.cell_f64(1, 1);
        assert!(
            btree_gain > hash_gain,
            "btree gain {btree_gain} should exceed hashtable gain {hash_gain}"
        );
    }

    #[test]
    fn fig12_read_barrier_dominates() {
        let t = fig12(Scale::Quick);
        for r in 0..t.rows.len() {
            let rd = t.cell_f64(r, 1);
            let val = t.cell_f64(r, 2);
            let commit = t.cell_f64(r, 3);
            assert!(
                rd + val > commit,
                "read barrier + validation should dominate commit"
            );
        }
    }

    #[test]
    fn declared_cells_cover_every_figure_request() {
        // Each builder must request only cells its `cells` fn declared —
        // the parallel sweep precomputes exactly the declared set.
        for fig in FIGURES {
            let declared: std::collections::HashSet<Cell> =
                (fig.cells)(Scale::Quick).into_iter().collect();
            let mut requested = Vec::new();
            // Resolve with canned outputs: no simulation, just record.
            let mut probe = |cell: &Cell| {
                requested.push(cell.clone());
                match cell {
                    Cell::Ds { .. } => CellOutput::Ds(WorkloadResult {
                        cycles: 1,
                        report: Default::default(),
                        txn: Default::default(),
                        total_ops: 1,
                        digest: 0,
                    }),
                    Cell::Kernel { .. } => CellOutput::Kernel(KernelResult {
                        cycles: 1,
                        report: Default::default(),
                        txn: Default::default(),
                    }),
                }
            };
            let _ = (fig.build)(Scale::Quick, &mut probe);
            for cell in &requested {
                assert!(
                    declared.contains(cell),
                    "{}: builder requested undeclared cell {:?}",
                    fig.name,
                    cell
                );
            }
        }
    }

    #[test]
    fn cell_dedup_keeps_declaration_order() {
        let cells = fig11_cells(Scale::Quick);
        let unique: std::collections::HashSet<&Cell> = cells.iter().collect();
        assert_eq!(unique.len(), cells.len(), "no duplicates");
        // The Lock 1p baseline is also the first row cell; it appears once.
        let lock1 = ds_cell(Structure::Bst, Scheme::Lock, 1, Scale::Quick);
        assert_eq!(cells.iter().filter(|&c| *c == lock1).count(), 1);
    }
}
