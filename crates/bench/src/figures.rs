//! Runners regenerating each evaluation figure of the paper.
//!
//! Absolute cycle counts are a property of this simulator, not of the
//! authors' (proprietary) one; what these runners reproduce — and what
//! `EXPERIMENTS.md` compares — is each figure's *shape*: who wins, by
//! roughly what factor, and where the crossovers fall.

use hastm::Granularity;
use hastm_sim::{CacheConfig, MachineConfig};
use hastm_workloads::{
    analyze, generate_stream, run_kernel, run_workload, KernelParams, Scheme, Structure,
    WorkloadConfig, WorkloadResult, PROFILES,
};

use crate::table::{pct, ratio, Table};
use crate::Scale;

/// The machine used by the multi-core scaling experiments (Figures
/// 18-20): a next-line prefetcher and a modest shared inclusive L2 give
/// cross-core interference without starving a single core.
fn scaling_machine() -> MachineConfig {
    MachineConfig {
        prefetch_next_line: true,
        ..MachineConfig::default()
    }
}

/// The machine used by the spurious-abort experiments (Figures 21-22): a
/// paper-era small L1 plus a small shared inclusive L2 maximize the two
/// §7.4 interference sources — prefetches kicking out marked lines and
/// inclusive-L2 back-invalidations — which is the regime in which the
/// naïve always-aggressive policy pays for its re-executions.
fn interference_machine() -> MachineConfig {
    MachineConfig {
        l1: CacheConfig::new(64, 4),  // 16 KiB 4-way (paper-era P4-class L1)
        l2: CacheConfig::new(256, 8), // 128 KiB shared, inclusive
        prefetch_next_line: true,
        ..MachineConfig::default()
    }
}

/// Runs one data-structure workload with total work fixed across thread
/// counts (scaling experiments divide the same op budget among threads).
fn ds_run(structure: Structure, scheme: Scheme, threads: usize, scale: Scale) -> WorkloadResult {
    ds_run_on(
        structure,
        scheme,
        threads,
        scale,
        MachineConfig::default(),
        1,
    )
}

fn ds_run_on(
    structure: Structure,
    scheme: Scheme,
    threads: usize,
    scale: Scale,
    machine: MachineConfig,
    size_mult: u64,
) -> WorkloadResult {
    let mut cfg = WorkloadConfig::paper_default(structure, scheme, threads);
    let total_ops = scale.ops() * 4;
    cfg.ops_per_thread = (total_ops / threads as u64).max(1);
    cfg.prepopulate = scale.prepopulate() * size_mult;
    cfg.key_range = cfg.prepopulate * 2;
    cfg.granularity = Granularity::CacheLine;
    cfg.machine = machine;
    if size_mult > 1 {
        // Scaling experiments: the adaptive watermark policy governs HASTM
        // at every thread count (the single-thread always-aggressive policy
        // would thrash on the interference machine).
        cfg.mode_policy_override = Some(hastm::ModePolicy::AbortRatioWatermark { watermark: 0.1 });
    }
    run_workload(&cfg)
}

fn thread_counts(scale: Scale, deep: bool) -> Vec<usize> {
    match (scale, deep) {
        (Scale::Quick, _) => vec![1, 2, 4],
        (_, false) => vec![1, 2, 4],
        (Scale::Standard, true) => vec![1, 2, 4, 8],
        (Scale::Full, true) => vec![1, 2, 4, 8, 16],
    }
}

/// Figure 11: STM (cache-line granularity, coarse atomic sections) versus
/// coarse-grained locks as processors scale. Times are relative to the
/// single-thread lock time of the same structure.
pub fn fig11(scale: Scale) -> Table {
    let threads = thread_counts(scale, true);
    let mut headers = vec!["series".to_string()];
    headers.extend(threads.iter().map(|t| format!("{t}p")));
    let mut table = Table {
        title: "Figure 11: STM vs lock scaling on TM workloads".into(),
        headers,
        rows: vec![],
        notes: vec![],
    };
    for structure in Structure::ALL {
        let lock1 = ds_run(structure, Scheme::Lock, 1, scale).cycles;
        for scheme in [Scheme::Lock, Scheme::Stm] {
            let mut row = vec![format!("{structure}_{}", scheme.label().to_lowercase())];
            for &t in &threads {
                let r = ds_run(structure, scheme, t, scale);
                row.push(ratio(r.cycles, lock1));
            }
            table.rows.push(row);
        }
    }
    table.note("relative to 1-thread lock; expected: locks flat/degrading, STM ~2x at 1p but scaling down with cores");
    table
}

/// Figure 12: where the base STM's time goes (read barrier, validation,
/// commit, write barrier, TLS access, application), single thread.
pub fn fig12(scale: Scale) -> Table {
    let mut table = Table::new(
        "Figure 12: STM execution time breakdown (single thread, % of transactional time)",
        &[
            "structure",
            "rdbar%",
            "validate%",
            "commit%",
            "wrbar%",
            "tls%",
            "app%",
        ],
    );
    for structure in Structure::ALL {
        let r = ds_run(structure, Scheme::Stm, 1, scale);
        let b = &r.txn.breakdown;
        let total = b.total().max(1) as f64;
        table.row(vec![
            structure.to_string(),
            pct(b.read_barrier as f64 / total),
            pct(b.validate as f64 / total),
            pct(b.commit as f64 / total),
            pct(b.write_barrier as f64 / total),
            pct(b.tls as f64 / total),
            pct(b.app as f64 / total),
        ]);
    }
    table.note("expected: read barrier + validation dominate the STM overhead (§7.1)");
    table
}

/// Figure 13: critical-section load fraction and cache reuse across the
/// Java/pthreads workload profiles.
pub fn fig13() -> Table {
    let mut table = Table::new(
        "Figure 13: ratio of loads and cache reuse inside critical sections",
        &["workload", "loads%", "load_reuse%", "store_reuse%"],
    );
    for p in PROFILES {
        let a = analyze(&generate_stream(&p.params(0x13)));
        table.row(vec![
            p.name.to_string(),
            pct(a.load_fraction),
            pct(a.load_reuse),
            pct(a.store_reuse),
        ]);
    }
    table
        .note("expected: loads >70% of memory ops in almost all workloads; load reuse mostly >50%");
    table
}

/// Figure 15: synthetic-kernel comparison of Cautious / HASTM / Hybrid
/// against the STM baseline while sweeping load fraction (60–90 %) and
/// load miss rate (40–60 %, i.e. reuse 60–40 %).
pub fn fig15(scale: Scale) -> Table {
    let mut table = Table::new(
        "Figure 15: TM performance comparison (execution time relative to STM)",
        &["miss%", "load%", "Cautious", "HASTM", "Hybrid"],
    );
    for miss in [60u32, 50, 40] {
        for load in [60u32, 70, 80, 90] {
            let params = KernelParams {
                load_pct: load,
                load_reuse_pct: 100 - miss,
                store_reuse_pct: 40,
                sections: scale.sections(),
                ..KernelParams::default()
            };
            let stream = generate_stream(&params);
            let stm = run_kernel(Scheme::Stm, &stream).cycles;
            let cautious = run_kernel(Scheme::HastmCautious, &stream).cycles;
            let hastm = run_kernel(Scheme::Hastm, &stream).cycles;
            let hybrid = run_kernel(Scheme::Hytm, &stream).cycles;
            table.row(vec![
                miss.to_string(),
                load.to_string(),
                ratio(cautious, stm),
                ratio(hastm, stm),
                ratio(hybrid, stm),
            ]);
        }
    }
    table.note("expected: HASTM >= Hybrid at 60% reuse (40% miss); within ~10% below at 40% reuse; cautious worst at low load/low reuse");
    table
}

/// Figure 16: single-thread execution time of the TM schemes relative to
/// sequential execution.
pub fn fig16(scale: Scale) -> Table {
    let mut table = Table::new(
        "Figure 16: relative execution time for TM schemes (1 thread, vs sequential)",
        &["structure", "HASTM", "Hybrid-TM", "STM", "Lock"],
    );
    for structure in Structure::ALL {
        let seq = ds_run(structure, Scheme::Sequential, 1, scale).cycles;
        table.row(vec![
            structure.to_string(),
            ratio(ds_run(structure, Scheme::Hastm, 1, scale).cycles, seq),
            ratio(ds_run(structure, Scheme::Hytm, 1, scale).cycles, seq),
            ratio(ds_run(structure, Scheme::Stm, 1, scale).cycles, seq),
            ratio(ds_run(structure, Scheme::Lock, 1, scale).cycles, seq),
        ]);
    }
    table.note("expected: HASTM ~= Hybrid << STM; smallest HASTM gain on the hashtable (low reuse), largest on the btree (high reuse)");
    table
}

/// Figure 17: HASTM ablation — full HASTM, cautious-only, and no-reuse
/// (filter disabled) against the STM, relative to sequential.
pub fn fig17(scale: Scale) -> Table {
    let mut table = Table::new(
        "Figure 17: performance breakdown for HASTM (1 thread, vs sequential)",
        &[
            "structure",
            "HASTM",
            "HASTM-Cautious",
            "HASTM-NoReuse",
            "STM",
        ],
    );
    for structure in Structure::ALL {
        let seq = ds_run(structure, Scheme::Sequential, 1, scale).cycles;
        table.row(vec![
            structure.to_string(),
            ratio(ds_run(structure, Scheme::Hastm, 1, scale).cycles, seq),
            ratio(
                ds_run(structure, Scheme::HastmCautious, 1, scale).cycles,
                seq,
            ),
            ratio(
                ds_run(structure, Scheme::HastmNoReuse, 1, scale).cycles,
                seq,
            ),
            ratio(ds_run(structure, Scheme::Stm, 1, scale).cycles, seq),
        ]);
    }
    table.note("expected: hashtable gains come from log elimination + validation (NoReuse ~= HASTM), trees also from reuse; cautious-only can exceed STM time");
    table
}

fn scaling_figure(
    title: &str,
    structure: Structure,
    schemes: &[Scheme],
    scale: Scale,
    machine: MachineConfig,
    expected: &str,
) -> Table {
    let threads = thread_counts(scale, false);
    let mut headers = vec!["scheme".to_string()];
    headers.extend(threads.iter().map(|t| format!("{t} core")));
    let mut table = Table {
        title: title.into(),
        headers,
        rows: vec![],
        notes: vec![],
    };
    // Larger structures than the single-thread figures: transactions must
    // be long enough for cross-core interference to land inside them.
    let lock1 = ds_run_on(structure, Scheme::Lock, 1, scale, machine.clone(), 16).cycles;
    for &scheme in schemes {
        let mut row = vec![scheme.label().to_string()];
        for &t in &threads {
            let r = ds_run_on(structure, scheme, t, scale, machine.clone(), 16);
            row.push(ratio(r.cycles, lock1));
        }
        table.rows.push(row);
    }
    table.note(expected);
    table.note(
        "machine: next-line prefetcher + small shared inclusive L2 (interference sources of §7.4)",
    );
    table
}

/// Figure 18: multi-core scaling for the BST (HASTM / STM / Lock, relative
/// to single-core lock time).
pub fn fig18(scale: Scale) -> Table {
    scaling_figure(
        "Figure 18: multi-core scaling for BST",
        Structure::Bst,
        &[Scheme::Hastm, Scheme::Stm, Scheme::Lock],
        scale,
        scaling_machine(),
        "expected: HASTM best overall; coarse lock does not scale (root lock for rotations)",
    )
}

/// Figure 19: multi-core scaling for the B-tree.
pub fn fig19(scale: Scale) -> Table {
    scaling_figure(
        "Figure 19: multi-core scaling for Btree",
        Structure::BTree,
        &[Scheme::Hastm, Scheme::Stm, Scheme::Lock],
        scale,
        scaling_machine(),
        "expected: HASTM still best, but its edge over STM shrinks with cores (marked lines lost to cross-core interference force software validation)",
    )
}

/// Figure 20: multi-core scaling for the hash table (low contention).
pub fn fig20(scale: Scale) -> Table {
    scaling_figure(
        "Figure 20: multi-core scaling for hash table",
        Structure::HashTable,
        &[Scheme::Hastm, Scheme::Stm, Scheme::Lock],
        scale,
        scaling_machine(),
        "expected: low contention; HASTM scales as well as STM and stays fastest",
    )
}

/// Figure 21: BST scaling of HASTM versus the naïve always-aggressive
/// policy versus STM.
pub fn fig21(scale: Scale) -> Table {
    scaling_figure(
        "Figure 21: BST scaling (different TM schemes)",
        Structure::Bst,
        &[Scheme::Hastm, Scheme::NaiveAggressive, Scheme::Stm],
        scale,
        interference_machine(),
        "expected: naive-aggressive scales worst (spurious aborts force re-executions); HASTM unaffected (stays cautious under interference)",
    )
}

/// Figure 22: B-tree scaling of HASTM versus naïve-aggressive versus STM.
pub fn fig22(scale: Scale) -> Table {
    scaling_figure(
        "Figure 22: Btree scaling (different TM schemes)",
        Structure::BTree,
        &[Scheme::Hastm, Scheme::NaiveAggressive, Scheme::Stm],
        scale,
        interference_machine(),
        "expected: same shape as Figure 21 on the btree",
    )
}

/// Every figure, in order.
pub fn all_figures(scale: Scale) -> Vec<Table> {
    vec![
        fig11(scale),
        fig12(scale),
        fig13(),
        fig15(scale),
        fig16(scale),
        fig17(scale),
        fig18(scale),
        fig19(scale),
        fig20(scale),
        fig21(scale),
        fig22(scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig13_has_twelve_rows() {
        let t = fig13();
        assert_eq!(t.rows.len(), 12);
        for r in 0..t.rows.len() {
            assert!(t.cell_f64(r, 1) > 60.0, "loads dominate");
        }
    }

    #[test]
    fn fig16_quick_shape() {
        let t = fig16(Scale::Quick);
        assert_eq!(t.rows.len(), 3);
        for r in 0..3 {
            let hastm = t.cell_f64(r, 1);
            let stm = t.cell_f64(r, 3);
            // The hashtable has almost no reuse, so HASTM's win there is
            // small (§7.3) and can be within noise at quick scale.
            let slack = if t.rows[r][0] == "Hashtable" {
                1.05
            } else {
                1.0
            };
            assert!(
                hastm < stm * slack,
                "HASTM must not lose to STM on {}: {hastm} vs {stm}",
                t.rows[r][0]
            );
            assert!(hastm >= 0.9, "HASTM cannot beat sequential: {hastm}");
        }
        // The btree's high reuse gives HASTM its largest win.
        let btree_gain = t.cell_f64(2, 3) / t.cell_f64(2, 1);
        let hash_gain = t.cell_f64(1, 3) / t.cell_f64(1, 1);
        assert!(
            btree_gain > hash_gain,
            "btree gain {btree_gain} should exceed hashtable gain {hash_gain}"
        );
    }

    #[test]
    fn fig12_read_barrier_dominates() {
        let t = fig12(Scale::Quick);
        for r in 0..t.rows.len() {
            let rd = t.cell_f64(r, 1);
            let val = t.cell_f64(r, 2);
            let commit = t.cell_f64(r, 3);
            assert!(
                rd + val > commit,
                "read barrier + validation should dominate commit"
            );
        }
    }
}
