//! Plain-text result tables for the figure harness.

/// A printable result table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Figure title ("Figure 16: Relative execution time for TM schemes").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells (first cell is the row label).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (expected shape, caveats).
    pub notes: Vec<String>,
}

impl Table {
    /// A table with a title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Appends a note printed under the table.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Parses a cell back to `f64` (test helper).
    pub fn cell_f64(&self, row: usize, col: usize) -> f64 {
        self.rows[row][col].parse().expect("numeric cell")
    }
}

/// Formats a ratio with two decimals.
pub fn ratio(value: u64, baseline: u64) -> String {
    format!("{:.2}", value as f64 / baseline.max(1) as f64)
}

/// Formats a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Figure X", &["scheme", "cycles"]);
        t.row(vec!["STM".into(), "100".into()]);
        t.row(vec!["HASTM".into(), "55".into()]);
        t.note("lower is better");
        let s = t.render();
        assert!(s.contains("Figure X"));
        assert!(s.contains("note: lower is better"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn helpers() {
        assert_eq!(ratio(150, 100), "1.50");
        assert_eq!(pct(0.825), "82.5");
        let mut t = Table::new("t", &["a"]);
        t.row(vec!["2.50".into()]);
        assert!((t.cell_f64(0, 0) - 2.5).abs() < 1e-9);
    }
}
