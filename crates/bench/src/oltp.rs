//! Serving-metrics sweep for the OLTP traffic mill: a 3-point Zipf-θ
//! sweep run on both execution backends (the cycle-accurate simulator and
//! the host-thread TL2 runtime), reporting the serving-style numbers the
//! mill was built to expose — p50/p99 latency, goodput, and abort-retry
//! amplification. Shared by the `perf` binary (BENCH.json `oltp` section)
//! and the `oltp` table binary.

use hastm::{Granularity, OracleMode};
use hastm_workloads::{
    run_oltp_native, run_oltp_sim, OltpConfig, OltpMetrics, OltpNativeConfig, OltpSimConfig, Scheme,
};

use crate::Scale;

/// The skew sweep: near-uniform, the paper-default skew, and a hot-key
/// regime past θ=1 where the head dominates.
pub const THETA_SWEEP: [f64; 3] = [0.6, 0.9, 1.2];

/// One measured point of the sweep. Latency units are simulated cycles on
/// the simulator backend and host nanoseconds on the native backend;
/// goodput is committed txns per million clock units (per Mcycle / per
/// millisecond respectively).
#[derive(Clone, Debug)]
pub struct ServingRow {
    /// Zipfian skew of the point.
    pub theta: f64,
    /// Median serving latency (clock units).
    pub p50: u64,
    /// 99th-percentile serving latency (clock units).
    pub p99: u64,
    /// Committed txns per million clock units.
    pub goodput: f64,
    /// Attempts per commit.
    pub amplification: f64,
    /// Top-level commits.
    pub commits: u64,
    /// Aborted attempts.
    pub aborts: u64,
}

impl ServingRow {
    fn from_metrics(theta: f64, m: &OltpMetrics) -> ServingRow {
        ServingRow {
            theta,
            p50: m.p50(),
            p99: m.p99(),
            goodput: m.goodput_per_munit(),
            amplification: m.abort_retry_amplification(),
            commits: m.commits,
            aborts: m.aborts,
        }
    }
}

/// The traffic configuration for one sweep point. One shared config drives
/// both backends so the transaction streams are bit-identical; only the
/// clock unit of `mean_arrival_gap` differs in interpretation (cycles vs
/// nanoseconds).
pub fn mill_config(scale: Scale, theta: f64) -> OltpConfig {
    let (threads, txns_per_thread) = match scale {
        Scale::Quick => (4, 48),
        Scale::Standard => (4, 256),
        Scale::Full => (8, 512),
    };
    OltpConfig {
        threads,
        txns_per_thread,
        accounts: 256,
        zipf_theta: theta,
        read_pct: 50,
        txn_keys: 4,
        large_txn_pct: 2,
        large_txn_keys: hastm_workloads::oltp::HTM_OVERFLOW_KEYS,
        flash_phases: 4,
        mean_arrival_gap: 600,
        seed: 0x5eed,
    }
}

/// Runs the θ sweep on the simulator under HASTM at cache-line
/// granularity (the paper's measured configuration; the oracle is off for
/// measured runs).
pub fn sim_sweep(scale: Scale) -> Vec<ServingRow> {
    THETA_SWEEP
        .iter()
        .map(|&theta| {
            let mut cfg = OltpSimConfig::new(
                mill_config(scale, theta),
                Scheme::Hastm,
                Granularity::CacheLine,
            );
            cfg.oracle = OracleMode::Off;
            let r = run_oltp_sim(&cfg);
            ServingRow::from_metrics(theta, &r.metrics)
        })
        .collect()
}

/// Runs the θ sweep on host threads over the TL2 runtime with the
/// mark-bit filter on (the HASTM analog).
pub fn native_sweep(scale: Scale) -> Vec<ServingRow> {
    THETA_SWEEP
        .iter()
        .map(|&theta| {
            let cfg = OltpNativeConfig {
                oltp: mill_config(scale, theta),
                native: Default::default(),
            };
            let r = run_oltp_native(&cfg);
            ServingRow::from_metrics(theta, &r.metrics)
        })
        .collect()
}
