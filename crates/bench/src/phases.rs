//! Phased-policy comparison: the HyTM cost-model table.
//!
//! Re-runs the Figure 21/22 interference regime (the machine on which the
//! naïve always-aggressive strawman pays for its re-executions), an
//! uncontended control, and the OLTP traffic mill under three HASTM mode
//! policies — [`ModePolicy::NaiveAggressive`], the adaptive
//! [`ModePolicy::AbortRatioWatermark`], and the PhTM-style
//! [`ModePolicy::Phased`] controller — and reports makespan plus the
//! per-phase cost-model counters (time-in-phase, transitions,
//! aborts-by-cause-by-phase, serial commits).
//!
//! Every point is a pure function of `(case, scale, gate)`: the simulator
//! is deterministic and the gate admission modes are schedule-identical,
//! so `crates/bench/tests/phase_determinism.rs` asserts bit-equal points
//! across all three gates and across host-thread placements. Shared by
//! the `phases` table binary and the `perf` binary (BENCH.json `phases`
//! section, schema 7).

use hastm::{Granularity, ModePolicy, OracleMode, Phase, PhasedParams, TxnStats};
use hastm_sim::GateMode;
use hastm_workloads::{run_oltp_sim, run_workload_spec, Scheme, Structure, WorkloadConfig};

use crate::figures::MachinePreset;
use crate::oltp::mill_config;
use crate::table::{ratio, Table};
use crate::Scale;
use hastm_workloads::OltpSimConfig;

/// The three policies the table compares, in baseline-first order.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// The strawman: always retry aggressively, never fall back.
    Naive,
    /// The adaptive abort-ratio watermark (the repo's prior best).
    Watermark,
    /// The PhTM-style global phase controller at its default parameters.
    Phased,
}

impl PolicyKind {
    /// All policies, baseline first.
    pub const ALL: [PolicyKind; 3] = [PolicyKind::Naive, PolicyKind::Watermark, PolicyKind::Phased];

    /// Stable label used in tables and BENCH.json.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Naive => "naive",
            PolicyKind::Watermark => "watermark",
            PolicyKind::Phased => "phased",
        }
    }

    /// The concrete mode policy.
    pub fn policy(self) -> ModePolicy {
        match self {
            PolicyKind::Naive => ModePolicy::NaiveAggressive,
            PolicyKind::Watermark => ModePolicy::AbortRatioWatermark { watermark: 0.1 },
            PolicyKind::Phased => ModePolicy::Phased(PhasedParams::default()),
        }
    }
}

/// The workload regimes the comparison covers.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum PhaseWorkload {
    /// Figure 21 regime: BST on the interference machine, 4 threads.
    BstInterference,
    /// Figure 22 regime: B-tree on the interference machine, 4 threads.
    BTreeInterference,
    /// Uncontended control: BST on the default machine, 2 threads, large
    /// structure — the regime where an adaptive policy must cost nothing.
    BstUncontended,
    /// The OLTP traffic mill at the paper-default skew (θ = 0.9).
    OltpMill,
}

impl PhaseWorkload {
    /// All workload regimes, interference first.
    pub const ALL: [PhaseWorkload; 4] = [
        PhaseWorkload::BstInterference,
        PhaseWorkload::BTreeInterference,
        PhaseWorkload::BstUncontended,
        PhaseWorkload::OltpMill,
    ];

    /// Stable label used in tables and BENCH.json.
    pub fn label(self) -> &'static str {
        match self {
            PhaseWorkload::BstInterference => "bst interference",
            PhaseWorkload::BTreeInterference => "btree interference",
            PhaseWorkload::BstUncontended => "bst uncontended",
            PhaseWorkload::OltpMill => "oltp mill",
        }
    }
}

/// One `(workload, policy)` comparison point — the unit of work the
/// determinism test fans out across host threads.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct PhaseCase {
    /// Workload regime.
    pub workload: PhaseWorkload,
    /// Mode policy under test.
    pub policy: PolicyKind,
}

/// Every comparison point, in render order (policies grouped by
/// workload, baseline first).
pub fn phase_cases() -> Vec<PhaseCase> {
    let mut cases = Vec::new();
    for workload in PhaseWorkload::ALL {
        for policy in PolicyKind::ALL {
            cases.push(PhaseCase { workload, policy });
        }
    }
    cases
}

/// Measured output of one comparison point. Integer-only on purpose: the
/// determinism test compares points with `==` across gate modes and host
/// placements.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhasePoint {
    /// The case this point measured.
    pub case: PhaseCase,
    /// Makespan in simulated cycles.
    pub cycles: u64,
    /// Final-state digest (map digest or balances digest).
    pub digest: u64,
    /// Top-level commits.
    pub commits: u64,
    /// Aborted attempts, all causes.
    pub aborts: u64,
    /// Published phase transitions (zero for the non-phased policies).
    pub transitions: u64,
    /// Commits inside the serial (irrevocable) phase.
    pub serial_commits: u64,
    /// Per-phase transaction cycles (`Phase::idx()`-indexed; all zero for
    /// the non-phased policies).
    pub phase_cycles: [u64; 4],
    /// Per-phase commits.
    pub phase_commits: [u64; 4],
    /// Per-phase conflict aborts.
    pub phase_aborts_conflict: [u64; 4],
    /// Per-phase capacity-class aborts (marked-line loss).
    pub phase_aborts_capacity: [u64; 4],
    /// Per-phase fast-path penalty: cycles spent in barrier overhead
    /// (read/write barriers, validation, commit) rather than useful work —
    /// the HyTM cost-model quantity the phase controller trades against
    /// re-execution.
    pub phase_overhead_cycles: [u64; 4],
}

impl PhasePoint {
    fn from_txn(case: PhaseCase, cycles: u64, digest: u64, txn: &TxnStats) -> PhasePoint {
        PhasePoint {
            case,
            cycles,
            digest,
            commits: txn.commits,
            aborts: txn.aborts(),
            transitions: txn.phase_transitions,
            serial_commits: txn.serial_commits,
            phase_cycles: txn.phase_cycles,
            phase_commits: txn.phase_commits,
            phase_aborts_conflict: txn.phase_aborts_conflict,
            phase_aborts_capacity: txn.phase_aborts_capacity,
            phase_overhead_cycles: txn.phase_overhead_cycles,
        }
    }
}

/// Runs one comparison point. Pure up to determinism: equal
/// `(case, scale, gate)` produce equal points in any process, on any
/// thread, in any order — and the three gate modes are
/// schedule-identical, so the gate must not change the point at all.
pub fn run_phase_case(case: PhaseCase, scale: Scale, gate: GateMode) -> PhasePoint {
    let policy = case.policy.policy();
    match case.workload {
        PhaseWorkload::OltpMill => {
            let mut cfg =
                OltpSimConfig::new(mill_config(scale, 0.9), Scheme::Hastm, Granularity::CacheLine);
            cfg.oracle = OracleMode::Off;
            cfg.mode_policy_override = Some(policy);
            cfg.machine.gate = gate;
            let r = run_oltp_sim(&cfg);
            PhasePoint::from_txn(case, r.metrics.elapsed, r.digest, &r.txn)
        }
        ds => {
            let (structure, machine, threads) = match ds {
                PhaseWorkload::BstInterference => (Structure::Bst, MachinePreset::Interference, 4),
                PhaseWorkload::BTreeInterference => {
                    (Structure::BTree, MachinePreset::Interference, 4)
                }
                PhaseWorkload::BstUncontended => (Structure::Bst, MachinePreset::Default, 2),
                PhaseWorkload::OltpMill => unreachable!(),
            };
            // Mirror the Figure 21/22 cell shape: fixed total op budget
            // divided among threads, 16x structure size so transactions
            // are long enough for interference to land inside them.
            let mut cfg = WorkloadConfig::paper_default(structure, Scheme::Hastm, threads);
            let total_ops = scale.ops() * 4;
            cfg.ops_per_thread = (total_ops / threads as u64).max(1);
            cfg.prepopulate = scale.prepopulate() * 16;
            cfg.key_range = cfg.prepopulate * 2;
            cfg.granularity = Granularity::CacheLine;
            cfg.machine = machine.config();
            cfg.machine.gate = gate;
            cfg.mode_policy_override = Some(policy);
            let (result, _) = run_workload_spec(&cfg);
            PhasePoint::from_txn(case, result.cycles, result.digest, &result.txn)
        }
    }
}

/// Runs every comparison point serially, in render order.
pub fn phase_points(scale: Scale, gate: GateMode) -> Vec<PhasePoint> {
    phase_cases()
        .into_iter()
        .map(|case| run_phase_case(case, scale, gate))
        .collect()
}

/// Percent of `part` in `total`, rendered compactly.
fn share(part: u64, total: u64) -> String {
    if total == 0 {
        "-".into()
    } else {
        format!("{:.0}%", part as f64 * 100.0 / total as f64)
    }
}

/// Renders the comparison table from precomputed points.
pub fn phases_table_from(points: &[PhasePoint]) -> Table {
    let mut table = Table::new(
        "Phased execution: mode-policy comparison (HyTM cost model)",
        &[
            "workload", "policy", "cycles", "vs naive", "commits", "aborts", "trans", "serial",
            "hw", "aggr", "caut", "ser",
        ],
    );
    for point in points {
        let naive = points
            .iter()
            .find(|p| p.case.workload == point.case.workload && p.case.policy == PolicyKind::Naive)
            .expect("baseline point present");
        let total_phase_cycles: u64 = point.phase_cycles.iter().sum();
        table.row(vec![
            point.case.workload.label().to_string(),
            point.case.policy.label().to_string(),
            point.cycles.to_string(),
            ratio(point.cycles, naive.cycles),
            point.commits.to_string(),
            point.aborts.to_string(),
            point.transitions.to_string(),
            point.serial_commits.to_string(),
            share(point.phase_cycles[Phase::Hw.idx()], total_phase_cycles),
            share(point.phase_cycles[Phase::Aggressive.idx()], total_phase_cycles),
            share(point.phase_cycles[Phase::Cautious.idx()], total_phase_cycles),
            share(point.phase_cycles[Phase::Serial.idx()], total_phase_cycles),
        ]);
    }
    table
        .note("expected: phased beats naive-aggressive on the interference workloads (it stops re-executing doomed aggressive attempts) and stays within a few percent of the watermark policy when uncontended")
        .note("hw/aggr/caut/ser columns: share of transaction cycles spent in each phase (phased policy only)");
    table
}

/// The comparison table at the given scale and gate mode.
pub fn phases_table(scale: Scale, gate: GateMode) -> Table {
    phases_table_from(&phase_points(scale, gate))
}
