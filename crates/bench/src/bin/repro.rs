//! Cross-scheme serializability stress: concurrent composed (nested)
//! transfers must conserve the total balance under every scheme and
//! thread count. Runs with the serializability oracle in `Panic` mode, so
//! any unserializable commit aborts the binary with the offending
//! transaction's evidence.
use hastm::{Granularity, ModePolicy, ObjRef, OracleMode, StmConfig, StmRuntime, TxThread};
use hastm_sim::{Machine, MachineConfig, WorkerFn};

fn run(scheme: &str, cores: usize, nested: bool, transfers: u32) -> (u64, u64) {
    let mut machine = Machine::new(MachineConfig::with_cores(cores));
    let cfg = match scheme {
        "stm" => StmConfig::stm(Granularity::Object),
        "hastm" => StmConfig::hastm(
            Granularity::Object,
            ModePolicy::AbortRatioWatermark { watermark: 0.1 },
        ),
        "naive" => StmConfig::hastm(Granularity::Object, ModePolicy::NaiveAggressive),
        "cautious" => StmConfig::hastm_cautious(Granularity::Object),
        "cacheline" => StmConfig::hastm(
            Granularity::CacheLine,
            ModePolicy::AbortRatioWatermark { watermark: 0.1 },
        ),
        _ => unreachable!(),
    };
    let runtime = StmRuntime::new(&mut machine, cfg.with_oracle(OracleMode::Panic));
    let n_accts = 16u64;
    let (accounts, _) = machine.run_one(|cpu| {
        let mut tx = TxThread::new(&runtime, cpu);
        let accounts: Vec<ObjRef> = (0..n_accts).map(|_| tx.alloc_obj(1)).collect();
        tx.atomic(|tx| {
            for a in &accounts {
                tx.write_word(*a, 0, 1000)?;
            }
            Ok(())
        });
        accounts
    });
    let rt = &runtime;
    let accts = &accounts;
    let workers: Vec<WorkerFn<'_>> = (0..cores)
        .map(|teller| {
            Box::new(move |cpu: &mut hastm_sim::Cpu| {
                let mut tx = TxThread::new(rt, cpu);
                let mut rng = 0x9e37_79b9_7f4a_7c15_u64 ^ ((teller as u64) << 32);
                for _ in 0..transfers {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    let from = accts[(rng % n_accts) as usize];
                    let to = accts[((rng >> 8) % n_accts) as usize];
                    let amount = 1 + rng % 50;
                    if from == to {
                        continue;
                    }
                    tx.atomic(|tx| {
                        if nested {
                            tx.nested(|tx| {
                                let b = tx.read_word(from, 0)?;
                                if b < amount {
                                    return tx.retry_now();
                                }
                                tx.write_word(from, 0, b - amount)
                            })?;
                            tx.nested(|tx| {
                                let b = tx.read_word(to, 0)?;
                                tx.write_word(to, 0, b + amount)
                            })?;
                        } else {
                            let b = tx.read_word(from, 0)?;
                            if b < amount {
                                return tx.retry_now();
                            }
                            tx.write_word(from, 0, b - amount)?;
                            let b2 = tx.read_word(to, 0)?;
                            tx.write_word(to, 0, b2 + amount)?;
                        }
                        Ok(())
                    });
                }
            }) as WorkerFn<'_>
        })
        .collect();
    machine.run(workers);
    // Settle the deferred serializability obligations (panics on the
    // first unserializable commit).
    runtime.verify_serializability(&machine);
    let (total, _) = machine.run_one(|cpu| {
        let mut tx = TxThread::new(&runtime, cpu);
        tx.atomic(|tx| {
            let mut s = 0;
            for a in accts {
                s += tx.read_word(*a, 0)?;
            }
            Ok(s)
        })
    });
    (total, n_accts * 1000)
}

fn main() {
    let mut bad = 0;
    for scheme in ["stm", "cautious", "hastm", "naive", "cacheline"] {
        for cores in [2usize, 3, 4] {
            for nested in [false, true] {
                let (got, want) = run(scheme, cores, nested, 200);
                let ok = if got == want {
                    "ok "
                } else {
                    bad += 1;
                    "BAD"
                };
                println!("{ok} scheme={scheme:9} cores={cores} nested={nested}: {got} vs {want}");
            }
        }
    }
    assert_eq!(bad, 0, "{bad} configurations lost money");
    println!("all conserved");
}
