//! Performance baseline for the figure sweep: runs the full evaluation
//! through the parallel sweep and emits machine-readable `BENCH.json`
//! (schema 7: throughput totals — including solo-core vs multi-core cell
//! throughput, where the scheduler's host-synchronization cost lives, and
//! the multi-core speedup of the speculative gate over the quantum
//! baseline — then per-figure rows for every figure that declares cells
//! with speculation telemetry and dedup attribution, then a `native`
//! section measuring the host-thread TL2 backend's committed txns/sec at
//! 1/2/4/8 threads with the mark-bit filter on and off, then an `mvcc`
//! section measuring the read-heavy mix under multi-version snapshot
//! reads vs single-version — including the structural zero-RO-abort
//! counters and the writer-side publication overhead — then an `oltp`
//! section with serving-style metrics — p50/p99 latency, goodput,
//! abort-retry amplification — for a 3-point Zipf-θ sweep of the OLTP
//! traffic mill on both backends, then a `phases` section comparing the
//! naïve, watermark, and PhTM-style phased HASTM mode policies on the
//! interference, uncontended, and OLTP regimes with per-phase cost-model
//! counters), optionally gating against a stored baseline (schema 1
//! through 7).
//!
//! ```text
//! perf [--out BENCH.json] [--check BASELINE.json] [--tolerance 0.25]
//!      [--threads N]
//! ```
//!
//! `--check` compares this run's `cells_per_sec` against the baseline
//! file's and exits nonzero if throughput regressed by more than the
//! tolerance (default 25 %, the CI gate). Scale comes from
//! `HASTM_BENCH_SCALE` as everywhere else.

use std::fmt::Write as _;

use hastm_bench::oltp::{native_sweep, sim_sweep, ServingRow};
use hastm_bench::phases::{phase_points, PhasePoint};
use hastm_bench::{sweep, Scale, SweepConfig, SweepReport};
use hastm_workloads::{run_native_workload, NativeWorkloadConfig, Structure};

struct Args {
    out: String,
    check: Option<String>,
    tolerance: f64,
    threads: Option<usize>,
}

fn parse_args() -> Args {
    let mut args = Args {
        out: "BENCH.json".to_string(),
        check: None,
        tolerance: 0.25,
        threads: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("perf: {name} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--out" => args.out = value("--out"),
            "--check" => args.check = Some(value("--check")),
            "--tolerance" => {
                let v = value("--tolerance");
                args.tolerance = v.parse().unwrap_or_else(|_| {
                    eprintln!("perf: bad --tolerance {v:?}");
                    std::process::exit(2);
                });
            }
            "--threads" => {
                let v = value("--threads");
                args.threads = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("perf: bad --threads {v:?}");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!(
                    "usage: perf [--out FILE] [--check BASELINE] [--tolerance F] [--threads N]  (unknown arg {other:?})"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Quick => "quick",
        Scale::Standard => "standard",
        Scale::Full => "full",
    }
}

/// Per-cell throughput over summed single-cell wall seconds (cells run
/// interleaved on the sweep's worker pool, so elapsed wall time cannot be
/// attributed to one class; summed per-cell time can).
fn class_rate(cells: usize, cell_seconds: f64) -> f64 {
    cells as f64 / cell_seconds.max(1e-9)
}

/// One native-backend measurement row: same workload, same seed, filter
/// on and off.
struct NativeRow {
    threads: usize,
    filter_txns_per_sec: f64,
    nofilter_txns_per_sec: f64,
    fast_read_pct: f64,
}

/// Measures the host-thread TL2 backend on the paper-default hash-table
/// mix (20 % updates, 1024-key range) at each thread count. The row keys
/// deliberately avoid the substring `cells_per_sec` so the first-occurrence
/// extraction used by `--check` keeps reading the simulator totals.
fn native_rows() -> Vec<NativeRow> {
    [1usize, 2, 4, 8]
        .iter()
        .map(|&threads| {
            let run = |mark_filter: bool| {
                let mut cfg = NativeWorkloadConfig::paper_default(Structure::HashTable, threads);
                cfg.native.mark_filter = mark_filter;
                run_native_workload(&cfg)
            };
            let with = run(true);
            let without = run(false);
            let reads = with.stats.fast_reads + with.stats.slow_reads;
            NativeRow {
                threads,
                filter_txns_per_sec: with.txns_per_sec(),
                nofilter_txns_per_sec: without.txns_per_sec(),
                fast_read_pct: if reads == 0 {
                    0.0
                } else {
                    with.stats.fast_reads as f64 * 100.0 / reads as f64
                },
            }
        })
        .collect()
}

/// One multi-version measurement row: the read-heavy mix (4 % updates,
/// read-only gets) under `Multi(3)` snapshot rings vs the identical mix
/// under `Single`.
struct MvccRow {
    threads: usize,
    snapshot_txns_per_sec: f64,
    single_txns_per_sec: f64,
    ro_commits: u64,
    ro_aborts: u64,
    snapshot_reads: u64,
    versions_published: u64,
}

/// Measures multi-version snapshot reads on the host-thread backend:
/// the read-heavy hash-table mix at each thread count under `Multi(3)`
/// and under `Single` (same streams, so the ratio is the snapshot path's
/// effect), plus the zero-RO-abort counters the suite guarantees. The
/// row keys deliberately avoid the substring `cells_per_sec` (see
/// `render_json`).
fn mvcc_rows() -> Vec<MvccRow> {
    [1usize, 2, 4, 8]
        .iter()
        .map(|&threads| {
            let run = |versioning: hastm::Versioning| {
                let mut cfg = NativeWorkloadConfig::read_heavy(Structure::HashTable, threads);
                cfg.native.versioning = versioning;
                run_native_workload(&cfg)
            };
            let multi = run(hastm::Versioning::Multi { k: 3 });
            let single = run(hastm::Versioning::Single);
            MvccRow {
                threads,
                snapshot_txns_per_sec: multi.txns_per_sec(),
                single_txns_per_sec: single.txns_per_sec(),
                ro_commits: multi.stats.ro_commits,
                ro_aborts: multi.stats.ro_aborts,
                snapshot_reads: multi.stats.snapshot_reads,
                versions_published: multi.stats.versions_published,
            }
        })
        .collect()
}

/// Writer-side cost of version publication: the paper-default 20 %-update
/// mix (no read-only declarations, so every transaction is a potential
/// writer) under `Multi(3)` vs `Single` at 4 threads.
struct WriterOverhead {
    multi_txns_per_sec: f64,
    single_txns_per_sec: f64,
}

fn writer_overhead() -> WriterOverhead {
    let run = |versioning: hastm::Versioning| {
        let mut cfg = NativeWorkloadConfig::paper_default(Structure::HashTable, 4);
        cfg.native.versioning = versioning;
        run_native_workload(&cfg)
    };
    WriterOverhead {
        multi_txns_per_sec: run(hastm::Versioning::Multi { k: 3 }).txns_per_sec(),
        single_txns_per_sec: run(hastm::Versioning::Single).txns_per_sec(),
    }
}

/// Renders `BENCH.json` (schema 6). The `totals` object precedes the
/// `figures` array on purpose — and its scalar `cells_per_sec` precedes
/// the `solo`/`multi` sub-objects — because the regression gate extracts
/// `cells_per_sec` by first occurrence; schema-1..5 baselines therefore
/// stay readable by `--check` and schema-6 files stay readable by older
/// gates. The `native`, `mvcc`, and `oltp` row keys (and the speculation
/// keys) deliberately avoid that substring for the same reason.
///
/// `report` is the quantum-gate sweep (the comparable baseline the
/// regression gate reads); `spec_report` is the same sweep re-run under
/// `GateMode::Speculative`, from which the speculation telemetry and the
/// `multi.speedup_vs_quantum` ratio are taken.
fn render_json(
    scale: Scale,
    report: &SweepReport,
    spec_report: &SweepReport,
    native: &[NativeRow],
    mvcc: &[MvccRow],
    writer: &WriterOverhead,
    oltp_sim: &[ServingRow],
    oltp_native: &[ServingRow],
    phases: &[PhasePoint],
) -> String {
    let wall_s = report.wall.as_secs_f64();
    let cells_per_sec = report.unique_cells as f64 / wall_s.max(1e-9);
    let cycles_per_sec = report.simulated_cycles as f64 / wall_s.max(1e-9);
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": 7,");
    let _ = writeln!(s, "  \"scale\": \"{}\",", scale_name(scale));
    let _ = writeln!(s, "  \"host_threads\": {},", report.threads);
    s.push_str("  \"totals\": {\n");
    let _ = writeln!(s, "    \"wall_ms\": {:.3},", wall_s * 1e3);
    let _ = writeln!(s, "    \"cells\": {},", report.unique_cells);
    let _ = writeln!(s, "    \"cells_per_sec\": {cells_per_sec:.3},");
    let _ = writeln!(
        s,
        "    \"solo\": {{ \"cells\": {}, \"cell_seconds\": {:.3}, \"cells_per_sec\": {:.3} }},",
        report.solo_cells,
        report.solo_cell_seconds,
        class_rate(report.solo_cells, report.solo_cell_seconds),
    );
    // Speculative-vs-quantum multi-core throughput ratio, per summed
    // single-cell wall time (the quantity the speculative gate exists to
    // improve; ~1.0 on a single-CPU host where the sweep cannot overlap).
    let speedup_vs_quantum = class_rate(spec_report.multi_cells, spec_report.multi_cell_seconds)
        / class_rate(report.multi_cells, report.multi_cell_seconds).max(1e-9);
    let _ = writeln!(
        s,
        "    \"multi\": {{ \"cells\": {}, \"cell_seconds\": {:.3}, \"cells_per_sec\": {:.3}, \"speedup_vs_quantum\": {speedup_vs_quantum:.3} }},",
        report.multi_cells,
        report.multi_cell_seconds,
        class_rate(report.multi_cells, report.multi_cell_seconds),
    );
    let _ = writeln!(
        s,
        "    \"speculation\": {{ \"spec_commit_rate\": {:.4}, \"rollback_rate\": {:.4}, \"rollback_cycles_wasted\": {} }},",
        spec_report.spec.commit_rate(),
        spec_report.spec.rollback_rate(),
        spec_report.spec.rollback_cycles_wasted,
    );
    let _ = writeln!(s, "    \"simulated_cycles\": {},", report.simulated_cycles);
    let _ = writeln!(s, "    \"simulated_cycles_per_sec\": {cycles_per_sec:.1}");
    s.push_str("  },\n");
    s.push_str("  \"figures\": [\n");
    // fig13 is pure trace analysis and declares no cells; zero-cell rows
    // carry no throughput signal, so they are dropped from the report.
    let with_cells: Vec<_> = report.figures.iter().filter(|f| f.cells > 0).collect();
    for (i, fig) in with_cells.iter().enumerate() {
        let comma = if i + 1 < with_cells.len() { "," } else { "" };
        let shared: Vec<String> = fig
            .dedup_shared_with
            .iter()
            .map(|n| format!("\"{n}\""))
            .collect();
        let spec = spec_report
            .figures
            .iter()
            .find(|f| f.name == fig.name)
            .map(|f| f.spec)
            .unwrap_or_default();
        let _ = writeln!(
            s,
            "    {{ \"name\": \"{}\", \"cells\": {}, \"fresh_cells\": {}, \"wall_ms\": {:.3}, \"simulated_cycles\": {}, \"dedup_shared_with\": [{}], \"spec_commit_rate\": {:.4}, \"rollback_rate\": {:.4}, \"rollback_cycles_wasted\": {} }}{comma}",
            fig.name,
            fig.cells,
            fig.fresh_cells,
            fig.cell_seconds * 1e3,
            fig.simulated_cycles,
            shared.join(", "),
            spec.commit_rate(),
            spec.rollback_rate(),
            spec.rollback_cycles_wasted,
        );
    }
    s.push_str("  ],\n");
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    s.push_str("  \"native\": {\n");
    let _ = writeln!(s, "    \"host_cpus\": {host_cpus},");
    s.push_str("    \"workload\": \"hash-table, 20% updates, 1024-key range, 1000 ops/thread\",\n");
    s.push_str("    \"rows\": [\n");
    let base = native
        .iter()
        .find(|r| r.threads == 1)
        .map_or(0.0, |r| r.filter_txns_per_sec);
    for (i, row) in native.iter().enumerate() {
        let comma = if i + 1 < native.len() { "," } else { "" };
        let speedup = if base > 0.0 {
            row.filter_txns_per_sec / base
        } else {
            0.0
        };
        let _ = writeln!(
            s,
            "      {{ \"threads\": {}, \"filter_txns_per_sec\": {:.1}, \"nofilter_txns_per_sec\": {:.1}, \"fast_read_pct\": {:.1}, \"speedup_vs_1\": {speedup:.3} }}{comma}",
            row.threads, row.filter_txns_per_sec, row.nofilter_txns_per_sec, row.fast_read_pct,
        );
    }
    s.push_str("    ]\n  },\n");
    s.push_str("  \"mvcc\": {\n");
    s.push_str(
        "    \"workload\": \"hash-table, 4% updates, read-only gets, 1024-key range, 1000 ops/thread, k=3 rings\",\n",
    );
    s.push_str("    \"rows\": [\n");
    for (i, row) in mvcc.iter().enumerate() {
        let comma = if i + 1 < mvcc.len() { "," } else { "" };
        let snapshot_over_single = if row.single_txns_per_sec > 0.0 {
            row.snapshot_txns_per_sec / row.single_txns_per_sec
        } else {
            0.0
        };
        let _ = writeln!(
            s,
            "      {{ \"threads\": {}, \"snapshot_txns_per_sec\": {:.1}, \"single_txns_per_sec\": {:.1}, \"snapshot_over_single\": {snapshot_over_single:.3}, \"ro_commits\": {}, \"ro_aborts\": {}, \"snapshot_reads\": {}, \"versions_published\": {} }}{comma}",
            row.threads,
            row.snapshot_txns_per_sec,
            row.single_txns_per_sec,
            row.ro_commits,
            row.ro_aborts,
            row.snapshot_reads,
            row.versions_published,
        );
    }
    s.push_str("    ],\n");
    let writer_ratio = if writer.single_txns_per_sec > 0.0 {
        writer.multi_txns_per_sec / writer.single_txns_per_sec
    } else {
        0.0
    };
    let _ = writeln!(
        s,
        "    \"writer_overhead\": {{ \"workload\": \"paper-default 20% updates, 4 threads\", \"multi_txns_per_sec\": {:.1}, \"single_txns_per_sec\": {:.1}, \"multi_over_single\": {writer_ratio:.3} }}",
        writer.multi_txns_per_sec, writer.single_txns_per_sec,
    );
    s.push_str("  },\n");
    s.push_str("  \"oltp\": {\n");
    s.push_str(
        "    \"workload\": \"bank mill, 256 accounts, 50% reads, 2% HTM-overflow tail, flash crowds\",\n",
    );
    let _ = writeln!(
        s,
        "    \"sim\": {{ \"scheme\": \"hastm:line\", \"units\": \"cycles\", \"rows\": [\n{}    ] }},",
        serving_rows(oltp_sim, "mcycle"),
    );
    let _ = writeln!(
        s,
        "    \"native\": {{ \"scheme\": \"tl2+filter\", \"units\": \"nanos\", \"rows\": [\n{}    ] }}",
        serving_rows(oltp_native, "msec"),
    );
    s.push_str("  },\n");
    // Phased-policy comparison (HyTM cost model). Row keys deliberately
    // avoid the substring `cells_per_sec` (see the schema note above);
    // makespans are reported as `sim_cycles`.
    s.push_str("  \"phases\": {\n");
    s.push_str("    \"gate\": \"quantum\",\n");
    s.push_str("    \"rows\": [\n");
    for (i, p) in phases.iter().enumerate() {
        let comma = if i + 1 < phases.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "      {{ \"workload\": \"{}\", \"policy\": \"{}\", \"sim_cycles\": {}, \"commits\": {}, \"aborts\": {}, \"transitions\": {}, \"serial_commits\": {}, \"phase_cycles\": [{}, {}, {}, {}], \"phase_commits\": [{}, {}, {}, {}], \"phase_overhead_cycles\": [{}, {}, {}, {}] }}{comma}",
            p.case.workload.label(),
            p.case.policy.label(),
            p.cycles,
            p.commits,
            p.aborts,
            p.transitions,
            p.serial_commits,
            p.phase_cycles[0],
            p.phase_cycles[1],
            p.phase_cycles[2],
            p.phase_cycles[3],
            p.phase_commits[0],
            p.phase_commits[1],
            p.phase_commits[2],
            p.phase_commits[3],
            p.phase_overhead_cycles[0],
            p.phase_overhead_cycles[1],
            p.phase_overhead_cycles[2],
            p.phase_overhead_cycles[3],
        );
    }
    s.push_str("    ]\n  }\n}\n");
    s
}

/// Serving-metric rows for the `oltp` section. `p50`/`p99` are in the
/// backend's clock units; `goodput_txns_per_*` names the unit explicitly
/// (per Mcycle on the simulator, per millisecond on host threads).
fn serving_rows(rows: &[ServingRow], unit: &str) -> String {
    let mut s = String::new();
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "      {{ \"theta\": {:.1}, \"p50\": {}, \"p99\": {}, \"goodput_txns_per_{unit}\": {:.3}, \"abort_retry_amplification\": {:.4}, \"commits\": {}, \"aborts\": {} }}{comma}",
            row.theta, row.p50, row.p99, row.goodput, row.amplification, row.commits, row.aborts,
        );
    }
    s
}

/// First-occurrence numeric extraction (`"key": 123.4`); the emitter
/// guarantees the totals object comes first.
fn extract_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let args = parse_args();
    let mut config = SweepConfig::from_env();
    if let Some(t) = args.threads {
        config.threads = t.max(1);
    }
    let scale = Scale::from_env();
    eprintln!(
        "perf: sweeping all figures at {scale:?} scale on {} host thread(s)...",
        config.threads
    );
    let report = sweep(scale, &config);
    eprintln!("perf: re-sweeping under the speculative gate for the multi-core comparison...");
    let spec_config = SweepConfig {
        gate: hastm_sim::GateMode::Speculative,
        ..config.clone()
    };
    let spec_report = sweep(scale, &spec_config);
    eprintln!(
        "perf: speculative multi-core {} cells → {:.2} cells/sec vs quantum {:.2} ({:.2}x); commit rate {:.1}%, rollback rate {:.1}%",
        spec_report.multi_cells,
        class_rate(spec_report.multi_cells, spec_report.multi_cell_seconds),
        class_rate(report.multi_cells, report.multi_cell_seconds),
        class_rate(spec_report.multi_cells, spec_report.multi_cell_seconds)
            / class_rate(report.multi_cells, report.multi_cell_seconds).max(1e-9),
        spec_report.spec.commit_rate() * 100.0,
        spec_report.spec.rollback_rate() * 100.0,
    );
    eprintln!("perf: measuring the native host-thread backend...");
    let native = native_rows();
    eprintln!("perf: measuring multi-version snapshot reads vs single-version...");
    let mvcc = mvcc_rows();
    let writer = writer_overhead();
    eprintln!("perf: running the OLTP serving-metrics sweep on both backends...");
    let oltp_sim = sim_sweep(scale);
    let oltp_native = native_sweep(scale);
    eprintln!("perf: comparing HASTM mode policies (naive / watermark / phased)...");
    let phases = phase_points(scale, hastm_sim::GateMode::default());
    let json = render_json(
        scale,
        &report,
        &spec_report,
        &native,
        &mvcc,
        &writer,
        &oltp_sim,
        &oltp_native,
        &phases,
    );
    std::fs::write(&args.out, &json).unwrap_or_else(|e| {
        eprintln!("perf: cannot write {}: {e}", args.out);
        std::process::exit(1);
    });
    let cells_per_sec = extract_number(&json, "cells_per_sec").expect("own json");
    eprintln!(
        "perf: {} cells in {:.1}s → {:.2} cells/sec, {:.0} simulated cycles/sec → {}",
        report.unique_cells,
        report.wall.as_secs_f64(),
        cells_per_sec,
        extract_number(&json, "simulated_cycles_per_sec").expect("own json"),
        args.out,
    );
    eprintln!(
        "perf: solo-core {} cells → {:.2} cells/sec; multi-core {} cells → {:.2} cells/sec (per summed cell time)",
        report.solo_cells,
        class_rate(report.solo_cells, report.solo_cell_seconds),
        report.multi_cells,
        class_rate(report.multi_cells, report.multi_cell_seconds),
    );
    for row in &native {
        eprintln!(
            "perf: native {} thread(s) → {:.0} txns/sec (filter on, {:.0}% fast reads), {:.0} txns/sec (filter off)",
            row.threads, row.filter_txns_per_sec, row.fast_read_pct, row.nofilter_txns_per_sec,
        );
    }
    for row in &mvcc {
        eprintln!(
            "perf: mvcc {} thread(s) → {:.0} txns/sec (snapshot, {} ro commits / {} ro aborts), {:.0} txns/sec (single)",
            row.threads,
            row.snapshot_txns_per_sec,
            row.ro_commits,
            row.ro_aborts,
            row.single_txns_per_sec,
        );
    }
    eprintln!(
        "perf: mvcc writer overhead (20% updates, 4 threads) → {:.0} txns/sec multi vs {:.0} single",
        writer.multi_txns_per_sec, writer.single_txns_per_sec,
    );
    for (backend, unit, rows) in [("sim", "cycles", &oltp_sim), ("native", "ns", &oltp_native)] {
        for row in rows.iter() {
            eprintln!(
                "perf: oltp {backend} θ={:.1} → p50 {} / p99 {} {unit}, goodput {:.2}, amplification {:.3}",
                row.theta, row.p50, row.p99, row.goodput, row.amplification,
            );
        }
    }
    for p in &phases {
        eprintln!(
            "perf: phases {} / {} → {} cycles, {} commits, {} aborts, {} transitions, {} serial commits",
            p.case.workload.label(),
            p.case.policy.label(),
            p.cycles,
            p.commits,
            p.aborts,
            p.transitions,
            p.serial_commits,
        );
    }
    if let Some(baseline_path) = args.check {
        let baseline = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
            eprintln!("perf: cannot read baseline {baseline_path}: {e}");
            std::process::exit(1);
        });
        let base = extract_number(&baseline, "cells_per_sec").unwrap_or_else(|| {
            eprintln!("perf: no cells_per_sec in baseline {baseline_path}");
            std::process::exit(1);
        });
        let floor = base * (1.0 - args.tolerance);
        if cells_per_sec < floor {
            eprintln!(
                "perf: REGRESSION — {cells_per_sec:.2} cells/sec is more than {:.0}% below baseline {base:.2} (floor {floor:.2})",
                args.tolerance * 100.0
            );
            std::process::exit(1);
        }
        eprintln!(
            "perf: within tolerance — {cells_per_sec:.2} cells/sec vs baseline {base:.2} (floor {floor:.2})"
        );
    }
}
