//! Regenerates Figure 14 of the paper. Scale via HASTM_BENCH_SCALE=quick|standard|full.

fn main() {
    let scale = hastm_bench::Scale::from_env();
    hastm_bench::fig14(scale).print();
    let _ = scale;
}
