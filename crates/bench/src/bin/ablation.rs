//! Ablation of the §5 write-filtering extension ("an implementation could
//! also filter STM write barrier and undo logging operations using
//! additional mark bits") — implemented here on the hardware's second mark
//! filter and measured against baseline HASTM on store-heavy kernels.
//!
//! Run with: `cargo run --release -p hastm-bench --bin ablation`

use hastm::{Granularity, ModePolicy, ObjRef, StmConfig, StmRuntime, TxThread};
use hastm_bench::table::{ratio, Table};
use hastm_sim::{Machine, MachineConfig};

/// Accumulator kernel: each transaction rewrites a few hot words many
/// times (running sums, counters — the write-locality pattern the filter
/// targets). Returns (cycles, write_fast_path, undo_elided).
fn accumulate(filter_writes: bool, rewrites: u32) -> (u64, u64, u64) {
    let mut config = StmConfig::hastm(Granularity::Object, ModePolicy::SingleThreadAggressive);
    config.filter_writes = filter_writes;
    let mut machine = Machine::new(MachineConfig::default());
    let runtime = StmRuntime::new(&mut machine, config);
    machine
        .run_one(|cpu| {
            let mut tx = TxThread::new(&runtime, cpu);
            let objs: Vec<ObjRef> = (0..16).map(|_| tx.alloc_obj(2)).collect();
            tx.atomic(|tx| {
                for o in &objs {
                    tx.write_word(*o, 0, 0)?;
                }
                Ok(())
            });
            let t0 = tx.cpu().now();
            for round in 0..100u64 {
                tx.atomic(|tx| {
                    for o in &objs {
                        for k in 0..rewrites as u64 {
                            let v = tx.read_word(*o, 0)?;
                            tx.write_word(*o, 0, v + round + k)?;
                        }
                    }
                    Ok(())
                });
            }
            let dt = tx.cpu().now() - t0;
            (dt, tx.stats().write_fast_path, tx.stats().undo_elided)
        })
        .0
}

fn main() {
    let mut table = Table::new(
        "Ablation: write-barrier + undo-log filtering (second mark filter, §5 extension)",
        &[
            "rewrites/word",
            "HASTM",
            "HASTM+writefilter",
            "wr fast paths",
            "undo elided",
        ],
    );
    for rewrites in [1u32, 2, 4, 8] {
        let (base, _, _) = accumulate(false, rewrites);
        let (filt, fast, elided) = accumulate(true, rewrites);
        table.row(vec![
            rewrites.to_string(),
            "1.00".into(),
            ratio(filt, base),
            fast.to_string(),
            elided.to_string(),
        ]);
    }
    table.note("relative to baseline HASTM; expected: filtering pays increasingly as write locality grows, and is roughly neutral at 1 rewrite");
    table.print();
}
