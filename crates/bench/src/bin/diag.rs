//! Diagnostics: per-scheme execution breakdowns on the evaluation
//! workloads and kernels. Not a paper figure — a tool for understanding
//! where cycles go and whether the mode controller behaves.
//!
//! Usage: `cargo run --release -p hastm-bench --bin diag`

use hastm_workloads::{
    generate_stream, run_kernel, run_workload, KernelParams, Scheme, Structure, WorkloadConfig,
};

fn workload_diag() {
    println!("== data-structure diagnostics (1 thread, paper defaults) ==");
    for structure in [Structure::Bst, Structure::BTree, Structure::HashTable] {
        println!("-- {structure} --");
        for scheme in [
            Scheme::Sequential,
            Scheme::Hytm,
            Scheme::Hastm,
            Scheme::HastmCautious,
            Scheme::Stm,
        ] {
            let mut cfg = WorkloadConfig::paper_default(structure, scheme, 1);
            cfg.ops_per_thread = 600;
            cfg.prepopulate = 384;
            cfg.key_range = 768;
            let r = run_workload(&cfg);
            let b = &r.txn.breakdown;
            println!(
                "{:16} cyc/op {:7.0}  rd={:7} wr={:6} val={:6} commit={:5} tls={:5} app={:7}  fast={} slow={} unlogged={} skipval={} fullval={}",
                scheme.label(),
                r.cycles_per_op(),
                b.read_barrier,
                b.write_barrier,
                b.validate,
                b.commit,
                b.tls,
                b.app,
                r.txn.read_fast_path,
                r.txn.read_slow_path,
                r.txn.reads_unlogged,
                r.txn.validations_skipped,
                r.txn.validations_full,
            );
        }
    }
}

fn multicore_diag() {
    println!("== multicore mode-controller diagnostics (btree, interference machine) ==");
    for scheme in [Scheme::Hastm, Scheme::NaiveAggressive, Scheme::Stm] {
        for threads in [1usize, 2, 4] {
            let mut cfg = WorkloadConfig::paper_default(Structure::BTree, scheme, threads);
            cfg.mode_policy_override =
                Some(hastm::ModePolicy::AbortRatioWatermark { watermark: 0.1 });
            cfg.ops_per_thread = 600 / threads as u64;
            cfg.prepopulate = 2048;
            cfg.key_range = 4096;
            cfg.machine = hastm_sim::MachineConfig {
                l1: hastm_sim::CacheConfig::new(64, 4),
                l2: hastm_sim::CacheConfig::new(256, 8),
                prefetch_next_line: true,
                ..hastm_sim::MachineConfig::default()
            };
            let r = run_workload(&cfg);
            println!(
                "{:17} {}T cyc/op {:6.0} commits={} ab_conf={} ab_dirty={} aggr={} caut={} marked_lost={} backinv={}",
                scheme.label(),
                threads,
                r.cycles_per_op(),
                r.txn.commits,
                r.txn.aborts_conflict,
                r.txn.aborts_mark_dirty,
                r.txn.aggressive_commits,
                r.txn.cautious_commits,
                r.report.total(|c| c.marked_lines_lost),
                r.report.machine.back_invalidations
            );
        }
    }
}

fn kernel_diag() {
    println!("== synthetic kernel diagnostics (load 90%, reuse 60%) ==");
    let params = KernelParams {
        load_pct: 90,
        load_reuse_pct: 60,
        sections: 100,
        ..KernelParams::default()
    };
    let stream = generate_stream(&params);
    for scheme in [
        Scheme::Sequential,
        Scheme::Hytm,
        Scheme::Hastm,
        Scheme::HastmCautious,
        Scheme::Stm,
    ] {
        let r = run_kernel(scheme, &stream);
        let b = &r.txn.breakdown;
        println!(
            "{:16} cycles={:8} rd={:7} wr={:6} val={:6} fast={} slow={} unlogged={} l1miss={}",
            scheme.label(),
            r.cycles,
            b.read_barrier,
            b.write_barrier,
            b.validate,
            r.txn.read_fast_path,
            r.txn.read_slow_path,
            r.txn.reads_unlogged,
            r.report.cores[0].l1_misses
        );
    }
}

fn main() {
    workload_diag();
    multicore_diag();
    kernel_diag();
}
