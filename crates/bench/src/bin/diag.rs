//! Diagnostics: per-scheme execution breakdowns on the evaluation
//! workloads and kernels. Not a paper figure — a tool for understanding
//! where cycles go and whether the mode controller behaves.
//!
//! Usage: `cargo run --release -p hastm-bench --bin diag`
//!
//! With `--trace-out FILE` the tool additionally runs one representative
//! workload (HASTM on the B-tree, 2 threads) with event tracing armed and
//! writes its measured run as Chrome `trace_events` JSON — open it in
//! Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`. With
//! `--metrics-out FILE` the same run's unified counters registry
//! ([`hastm::MetricsSnapshot`]) is dumped as flat JSON.

use hastm_workloads::{
    generate_stream, run_kernel, run_workload, run_workload_traced, KernelParams, Scheme,
    Structure, WorkloadConfig,
};

fn workload_diag() {
    println!("== data-structure diagnostics (1 thread, paper defaults) ==");
    for structure in [Structure::Bst, Structure::BTree, Structure::HashTable] {
        println!("-- {structure} --");
        for scheme in [
            Scheme::Sequential,
            Scheme::Hytm,
            Scheme::Hastm,
            Scheme::HastmCautious,
            Scheme::Stm,
        ] {
            let mut cfg = WorkloadConfig::paper_default(structure, scheme, 1);
            cfg.ops_per_thread = 600;
            cfg.prepopulate = 384;
            cfg.key_range = 768;
            let r = run_workload(&cfg);
            let b = &r.txn.breakdown;
            println!(
                "{:16} cyc/op {:7.0}  rd={:7} wr={:6} val={:6} commit={:5} tls={:5} app={:7}  fast={} slow={} unlogged={} skipval={} fullval={}",
                scheme.label(),
                r.cycles_per_op(),
                b.read_barrier,
                b.write_barrier,
                b.validate,
                b.commit,
                b.tls,
                b.app,
                r.txn.read_fast_path,
                r.txn.read_slow_path,
                r.txn.reads_unlogged,
                r.txn.validations_skipped,
                r.txn.validations_full,
            );
        }
    }
}

fn multicore_diag() {
    println!("== multicore mode-controller diagnostics (btree, interference machine) ==");
    for scheme in [Scheme::Hastm, Scheme::NaiveAggressive, Scheme::Stm] {
        for threads in [1usize, 2, 4] {
            let mut cfg = WorkloadConfig::paper_default(Structure::BTree, scheme, threads);
            cfg.mode_policy_override =
                Some(hastm::ModePolicy::AbortRatioWatermark { watermark: 0.1 });
            cfg.ops_per_thread = 600 / threads as u64;
            cfg.prepopulate = 2048;
            cfg.key_range = 4096;
            cfg.machine = hastm_sim::MachineConfig {
                l1: hastm_sim::CacheConfig::new(64, 4),
                l2: hastm_sim::CacheConfig::new(256, 8),
                prefetch_next_line: true,
                ..hastm_sim::MachineConfig::default()
            };
            let r = run_workload(&cfg);
            println!(
                "{:17} {}T cyc/op {:6.0} commits={} ab_conf={} ab_dirty={} aggr={} caut={} marked_lost={} backinv={}",
                scheme.label(),
                threads,
                r.cycles_per_op(),
                r.txn.commits,
                r.txn.aborts_conflict,
                r.txn.aborts_mark_dirty,
                r.txn.aggressive_commits,
                r.txn.cautious_commits,
                r.report.total(|c| c.marked_lines_lost),
                r.report.machine.back_invalidations
            );
        }
    }
}

fn kernel_diag() {
    println!("== synthetic kernel diagnostics (load 90%, reuse 60%) ==");
    let params = KernelParams {
        load_pct: 90,
        load_reuse_pct: 60,
        sections: 100,
        ..KernelParams::default()
    };
    let stream = generate_stream(&params);
    for scheme in [
        Scheme::Sequential,
        Scheme::Hytm,
        Scheme::Hastm,
        Scheme::HastmCautious,
        Scheme::Stm,
    ] {
        let r = run_kernel(scheme, &stream);
        let b = &r.txn.breakdown;
        println!(
            "{:16} cycles={:8} rd={:7} wr={:6} val={:6} fast={} slow={} unlogged={} l1miss={}",
            scheme.label(),
            r.cycles,
            b.read_barrier,
            b.write_barrier,
            b.validate,
            r.txn.read_fast_path,
            r.txn.read_slow_path,
            r.txn.reads_unlogged,
            r.report.cores[0].l1_misses
        );
    }
}

/// Runs the representative traced workload and writes the requested
/// artifacts. Exits nonzero on I/O failure or (internal bug) an invalid
/// emitted trace.
fn trace_diag(trace_out: Option<&str>, metrics_out: Option<&str>) {
    let mut cfg = WorkloadConfig::paper_default(Structure::BTree, Scheme::Hastm, 2);
    cfg.ops_per_thread = 300;
    cfg.prepopulate = 384;
    cfg.key_range = 768;
    let (r, log) = run_workload_traced(&cfg, Some(hastm_sim::TraceConfig::default()));
    if let Some(path) = trace_out {
        let log = log.as_ref().expect("tracing was armed");
        let json = hastm_sim::chrome_trace_json(log);
        if let Err(e) = hastm_sim::validate_chrome_trace(&json) {
            eprintln!("error: emitted invalid trace JSON: {e}");
            std::process::exit(1);
        }
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("error: writing {path}: {e}");
            std::process::exit(1);
        }
        println!(
            "trace: {} events from {} @ {} -> {path}",
            log.total_events(),
            cfg.scheme.label(),
            cfg.structure,
        );
    }
    if let Some(path) = metrics_out {
        let snapshot = hastm::MetricsSnapshot::collect(&r.txn, &r.report);
        if let Err(e) = std::fs::write(path, snapshot.to_json()) {
            eprintln!("error: writing {path}: {e}");
            std::process::exit(1);
        }
        println!("metrics: {} counters -> {path}", snapshot.entries().len());
    }
}

fn main() {
    let mut trace_out = None;
    let mut metrics_out = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trace-out" => trace_out = it.next(),
            "--metrics-out" => metrics_out = it.next(),
            other => {
                eprintln!("error: unknown argument `{other}`");
                eprintln!("usage: diag [--trace-out FILE] [--metrics-out FILE]");
                std::process::exit(2);
            }
        }
    }
    if trace_out.is_some() || metrics_out.is_some() {
        trace_diag(trace_out.as_deref(), metrics_out.as_deref());
        return;
    }
    workload_diag();
    multicore_diag();
    kernel_diag();
}
