//! OLTP traffic-mill serving metrics: the 3-point Zipf-θ sweep on both
//! execution backends — the cycle-accurate simulator running HASTM at
//! cache-line granularity, and the host-thread TL2 runtime with the
//! mark-bit filter — as a `hastm-bench` table. Scale via
//! `HASTM_BENCH_SCALE=quick|standard|full`.

use hastm_bench::oltp::{mill_config, native_sweep, sim_sweep, ServingRow};
use hastm_bench::{Scale, Table};

fn rows(table: &mut Table, backend: &str, rows: &[ServingRow]) {
    for r in rows {
        table.row(vec![
            backend.to_string(),
            format!("{:.1}", r.theta),
            r.p50.to_string(),
            r.p99.to_string(),
            format!("{:.2}", r.goodput),
            format!("{:.3}", r.amplification),
            r.commits.to_string(),
            r.aborts.to_string(),
        ]);
    }
}

fn main() {
    let scale = Scale::from_env();
    let cfg = mill_config(scale, 0.0);
    let mut table = Table::new(
        "OLTP traffic mill — serving metrics across Zipf skew",
        &[
            "backend", "θ", "p50", "p99", "goodput", "amplify", "commits", "aborts",
        ],
    );
    rows(&mut table, "sim hastm:line", &sim_sweep(scale));
    rows(&mut table, "native tl2+filter", &native_sweep(scale));
    table
        .note(format!(
            "{} threads x {} txns/thread, {} accounts, {}% reads, {}% {}-key tail",
            cfg.threads,
            cfg.txns_per_thread,
            cfg.accounts,
            cfg.read_pct,
            cfg.large_txn_pct,
            cfg.large_txn_keys,
        ))
        .note(
            "latency/goodput units: simulated cycles and txns/Mcycle on the sim backend, \
             nanoseconds and txns/ms on the native backend",
        )
        .note("open-loop arrivals: latency = completion - scheduled arrival, queueing included");
    table.print();
}
