//! Regenerates every evaluation figure via the parallel cell sweep.
//!
//! Tables go to stdout in presentation order (bit-identical at any thread
//! count *and* under any gate mode — the simulator is deterministic per
//! cell, the per-op and quantum gates are schedule-identical, and the
//! speculative gate certifies or re-runs conservatively); progress and the
//! summary go to stderr so stdout stays diffable. Scale via
//! `HASTM_BENCH_SCALE`, host threads via `HASTM_SWEEP_THREADS`
//! (default: host parallelism), `--gate perop|quantum|spec` selects the
//! gate admission mode, and `--verify` re-runs every cell serially and
//! asserts the parallel outputs match.

use hastm_bench::{sweep, Scale, SweepConfig};
use hastm_sim::GateMode;

fn main() {
    let mut config = SweepConfig::from_env();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--verify" => config.verify = true,
            "--serial" => config.threads = 1,
            "--gate" => {
                config.gate = match args.next().as_deref() {
                    Some("perop") => GateMode::PerOp,
                    Some("quantum") => GateMode::Quantum,
                    Some("spec") => GateMode::Speculative,
                    other => {
                        eprintln!("--gate takes perop|quantum|spec (got {other:?})");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!(
                    "usage: all-figs [--verify] [--serial] [--gate perop|quantum|spec]  \
                     (unknown arg {other:?})"
                );
                std::process::exit(2);
            }
        }
    }
    let scale = Scale::from_env();
    eprintln!(
        "running full evaluation at {scale:?} scale on {} host thread(s) ({:?} gate){}...",
        config.threads,
        config.gate,
        if config.verify {
            " with serial verification"
        } else {
            ""
        }
    );
    let report = sweep(scale, &config);
    for fig in &report.figures {
        fig.table.print();
    }
    eprintln!(
        "swept {} unique cells across {} figures in {:.1}s ({} threads)",
        report.unique_cells,
        report.figures.len(),
        report.wall.as_secs_f64(),
        report.threads,
    );
}
