//! Regenerates every evaluation figure. Scale via HASTM_BENCH_SCALE.

fn main() {
    let scale = hastm_bench::Scale::from_env();
    eprintln!("running full evaluation at {scale:?} scale...");
    for table in hastm_bench::all_figures(scale) {
        table.print();
    }
}
