//! Regenerates Figure 17 of the paper. Scale via HASTM_BENCH_SCALE=quick|standard|full.

fn main() {
    let scale = hastm_bench::Scale::from_env();
    hastm_bench::fig17(scale).print();
    let _ = scale;
}
