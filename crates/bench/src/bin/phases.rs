//! Phased-execution comparison table: the Figure 21/22 interference
//! regime, an uncontended control, and the OLTP mill under the naïve
//! always-aggressive, abort-ratio-watermark, and PhTM-style phased mode
//! policies, with per-phase HyTM cost-model counters.
//!
//! ```text
//! phases [--gate quantum|perop|spec]
//! ```
//!
//! The gate admission modes are schedule-identical, so the table must be
//! bit-identical across all three `--gate` choices (the
//! `phase_determinism` test enforces this). Scale via
//! `HASTM_BENCH_SCALE=quick|standard|full`.

use hastm_sim::GateMode;

fn main() {
    let mut gate = GateMode::default();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--gate" => {
                let v = it.next().unwrap_or_else(|| {
                    eprintln!("phases: --gate needs a value (quantum|perop|spec)");
                    std::process::exit(2);
                });
                gate = match v.as_str() {
                    "quantum" => GateMode::Quantum,
                    "perop" => GateMode::PerOp,
                    "spec" => GateMode::Speculative,
                    other => {
                        eprintln!("phases: unknown gate {other:?} (quantum|perop|spec)");
                        std::process::exit(2);
                    }
                };
            }
            other => {
                eprintln!("usage: phases [--gate quantum|perop|spec]  (unknown arg {other:?})");
                std::process::exit(2);
            }
        }
    }
    let scale = hastm_bench::Scale::from_env();
    hastm_bench::phases::phases_table(scale, gate).print();
}
