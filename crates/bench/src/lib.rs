//! # hastm-bench — the paper's evaluation, regenerated
//!
//! One runner per evaluation figure of *"Architectural Support for
//! Software Transactional Memory"* (MICRO 2006). Each `figNN` binary
//! prints the rows/series of the corresponding figure; `all-figs` runs the
//! whole evaluation and `EXPERIMENTS.md` records the measured shapes
//! against the paper's claims.
//!
//! Experiment sizes scale with the `HASTM_BENCH_SCALE` environment
//! variable: `quick` (CI-sized; `ci` is an alias), `standard` (default),
//! or `full`.

pub mod figures;
pub mod oltp;
pub mod phases;
pub mod sweep;
pub mod table;

pub use figures::*;
pub use sweep::{sweep, sweep_selected, FigureRun, SweepConfig, SweepReport};
pub use table::Table;

/// Experiment scale, from `HASTM_BENCH_SCALE`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Tiny runs for CI and tests.
    Quick,
    /// Default size: minutes for the whole evaluation.
    Standard,
    /// Larger runs for tighter ratios.
    Full,
}

impl Scale {
    /// Reads the scale from the environment (default: `Standard`).
    pub fn from_env() -> Scale {
        match std::env::var("HASTM_BENCH_SCALE").as_deref() {
            Ok("quick") | Ok("ci") => Scale::Quick,
            Ok("full") => Scale::Full,
            _ => Scale::Standard,
        }
    }

    /// Operations per thread for data-structure workloads.
    pub fn ops(self) -> u64 {
        match self {
            Scale::Quick => 150,
            Scale::Standard => 600,
            Scale::Full => 2_000,
        }
    }

    /// Pre-populated keys.
    pub fn prepopulate(self) -> u64 {
        match self {
            Scale::Quick => 128,
            Scale::Standard => 384,
            Scale::Full => 1_024,
        }
    }

    /// Key range (2x prepopulate keeps structures about half full).
    pub fn key_range(self) -> u64 {
        self.prepopulate() * 2
    }

    /// Critical sections for synthetic kernels.
    pub fn sections(self) -> u32 {
        match self {
            Scale::Quick => 40,
            Scale::Standard => 150,
            Scale::Full => 400,
        }
    }
}
