//! Parallel figure sweep: a work-queue executor over figure [`Cell`]s.
//!
//! Every figure declares its cells up front ([`FIGURES`]); the sweep
//! deduplicates them across figures, pushes them on a
//! [`crossbeam::queue::SegQueue`], and drains the queue from N host
//! threads. Because [`run_cell`] is deterministic (the simulator's worker
//! interleaving is fixed by its logical-clock turn gate, not by host
//! scheduling), the rendered tables are bit-identical to a serial run —
//! [`SweepConfig::verify`] re-runs every cell on the coordinating thread
//! and asserts exactly that.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crossbeam::queue::SegQueue;
use hastm_sim::GateMode;

use hastm_workloads::SpecTelemetry;

use crate::figures::{run_cell_gated, run_cell_spec, Cell, CellOutput, FIGURES};
use crate::table::Table;
use crate::Scale;

/// Sweep tuning.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Host worker threads draining the cell queue.
    pub threads: usize,
    /// Re-run every cell serially after the parallel pass and assert the
    /// outputs are bit-identical (doubles the work; for tests and CI).
    pub verify: bool,
    /// Gate admission mode every cell runs under. Schedule-identical
    /// across modes, so the rendered tables must not depend on it.
    pub gate: GateMode,
}

impl SweepConfig {
    /// Threads from `HASTM_SWEEP_THREADS` (default: host parallelism),
    /// verification off, default gate mode.
    pub fn from_env() -> SweepConfig {
        let threads = std::env::var("HASTM_SWEEP_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        SweepConfig {
            threads,
            verify: false,
            gate: GateMode::default(),
        }
    }
}

/// Per-figure outcome of a sweep.
#[derive(Clone, Debug)]
pub struct FigureRun {
    /// Figure name (`fig11` ... `fig22`).
    pub name: &'static str,
    /// The rendered table (bit-identical to the serial builder's).
    pub table: Table,
    /// Cells the figure declared.
    pub cells: usize,
    /// Declared cells first claimed by this figure (cells shared with an
    /// earlier figure are counted there).
    pub fresh_cells: usize,
    /// Sum of simulated makespans over the declared cells.
    pub simulated_cycles: u64,
    /// Wall time attributed to this figure: each declared cell's
    /// single-cell wall time divided by the number of swept figures that
    /// declare it. Shared cells are split *proportionally*, so summing
    /// `cell_seconds` over all figures reconciles with the sum over the
    /// distinct executed cells (a figure whose cells are all shared no
    /// longer reports 0 wall time against nonzero simulated cycles).
    pub cell_seconds: f64,
    /// Names of the other swept figures this figure shares at least one
    /// deduplicated cell with (the figures its `cell_seconds` is split
    /// against).
    pub dedup_shared_with: Vec<&'static str>,
    /// Speculation telemetry summed over the declared cells (all-zero
    /// unless the sweep ran under [`GateMode::Speculative`]).
    pub spec: FigureSpec,
}

/// Per-figure speculation aggregates (see [`SpecTelemetry`]).
#[derive(Copy, Clone, Debug, Default)]
pub struct FigureSpec {
    /// Declared cells that attempted speculation.
    pub attempted_cells: usize,
    /// Gated ops admitted speculatively across certified cells.
    pub spec_ops: u64,
    /// Total gated ops across certified cells.
    pub total_ops: u64,
    /// Cells whose speculative attempt was tainted and re-run under the
    /// quantum gate.
    pub rollbacks: usize,
    /// Simulated cycles of the discarded attempts.
    pub rollback_cycles_wasted: u64,
}

impl FigureSpec {
    fn add(&mut self, t: &SpecTelemetry) {
        if !t.attempted {
            return;
        }
        self.attempted_cells += 1;
        self.spec_ops += t.spec_ops;
        self.total_ops += t.total_ops;
        if t.rolled_back {
            self.rollbacks += 1;
            self.rollback_cycles_wasted += t.rollback_cycles_wasted;
        }
    }

    /// Fraction of gated ops admitted speculatively and certified.
    pub fn commit_rate(&self) -> f64 {
        if self.total_ops == 0 {
            0.0
        } else {
            self.spec_ops as f64 / self.total_ops as f64
        }
    }

    /// Fraction of speculation attempts that rolled back.
    pub fn rollback_rate(&self) -> f64 {
        if self.attempted_cells == 0 {
            0.0
        } else {
            self.rollbacks as f64 / self.attempted_cells as f64
        }
    }
}

/// Outcome of a whole sweep.
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// Per-figure outcomes, in presentation order.
    pub figures: Vec<FigureRun>,
    /// Worker threads used.
    pub threads: usize,
    /// End-to-end wall time (enqueue to last table rendered).
    pub wall: Duration,
    /// Distinct cells executed.
    pub unique_cells: usize,
    /// Total simulated cycles over the distinct cells (each executed cell
    /// counted once, however many figures share it).
    pub simulated_cycles: u64,
    /// Distinct single-core cells (1-thread data-structure cells and
    /// kernels) and their summed single-cell wall seconds.
    pub solo_cells: usize,
    /// Summed wall seconds of the distinct single-core cells.
    pub solo_cell_seconds: f64,
    /// Distinct multi-core cells (≥ 2 simulated cores) — where the
    /// scheduler's host-synchronization cost concentrates.
    pub multi_cells: usize,
    /// Summed wall seconds of the distinct multi-core cells.
    pub multi_cell_seconds: f64,
    /// Speculation telemetry summed over the distinct executed cells
    /// (all-zero unless the sweep ran under [`GateMode::Speculative`]).
    pub spec: FigureSpec,
}

impl SweepReport {
    /// Tables in presentation order.
    pub fn tables(&self) -> Vec<&Table> {
        self.figures.iter().map(|f| &f.table).collect()
    }
}

/// Sweeps every figure. See [`sweep_selected`].
pub fn sweep(scale: Scale, config: &SweepConfig) -> SweepReport {
    let names: Vec<&str> = FIGURES.iter().map(|f| f.name).collect();
    sweep_selected(&names, scale, config)
}

/// Sweeps the named figures (names as in [`FIGURES`]) on
/// `config.threads` host threads and renders their tables.
///
/// # Panics
///
/// Panics on an unknown figure name, if a builder requests a cell its
/// figure did not declare, if a worker panics, or — under
/// `config.verify` — if any parallel cell output differs from the serial
/// re-run.
pub fn sweep_selected(names: &[&str], scale: Scale, config: &SweepConfig) -> SweepReport {
    let start = Instant::now();
    let figures: Vec<_> = names
        .iter()
        .map(|name| {
            FIGURES
                .iter()
                .find(|f| f.name == *name)
                .unwrap_or_else(|| panic!("unknown figure {name:?}"))
        })
        .collect();

    // Declare and dedup cells across figures, preserving first-seen order.
    let mut index_of: HashMap<Cell, usize> = HashMap::new();
    let mut jobs: Vec<Cell> = Vec::new();
    // (declared cell indices, fresh count) per figure.
    let mut declared: Vec<(Vec<usize>, usize)> = Vec::new();
    for fig in &figures {
        let cells = (fig.cells)(scale);
        let mut indices = Vec::with_capacity(cells.len());
        let mut fresh = 0;
        for cell in cells {
            let next = jobs.len();
            let idx = *index_of.entry(cell.clone()).or_insert_with(|| {
                jobs.push(cell);
                fresh += 1;
                next
            });
            indices.push(idx);
        }
        declared.push((indices, fresh));
    }

    let outputs = run_cells(&jobs, config.threads, config.gate);

    if config.verify {
        for (cell, (output, _, _)) in jobs.iter().zip(&outputs) {
            let serial = run_cell_gated(cell, config.gate);
            assert!(
                serial == *output,
                "parallel output diverged from serial for cell {} ({cell:?})",
                cell.label()
            );
        }
    }

    // Per-figure deduplicated declarations, and — for the proportional
    // wall-time split — how many swept figures claim each cell.
    let fig_unique: Vec<Vec<usize>> = declared
        .iter()
        .map(|(indices, _)| {
            let mut uniq = Vec::new();
            for &i in indices {
                if !uniq.contains(&i) {
                    uniq.push(i);
                }
            }
            uniq
        })
        .collect();
    let mut claims = vec![0usize; jobs.len()];
    for uniq in &fig_unique {
        for &i in uniq {
            claims[i] += 1;
        }
    }

    // Render tables through a resolver answering from the completed jobs.
    let mut runs = Vec::with_capacity(figures.len());
    for (pos, (fig, (indices, fresh))) in figures.iter().zip(&declared).enumerate() {
        let mut resolve = |cell: &Cell| -> CellOutput {
            let idx = *index_of.get(cell).unwrap_or_else(|| {
                panic!(
                    "{}: builder requested undeclared cell {} ({cell:?})",
                    fig.name,
                    cell.label()
                )
            });
            outputs[idx].0.clone()
        };
        let table = (fig.build)(scale, &mut resolve);
        let simulated_cycles = indices.iter().map(|&i| outputs[i].0.cycles()).sum();
        // Split each declared cell's wall time evenly across the figures
        // that declare it, so the per-figure times sum back to the total.
        let mut cell_seconds = 0.0;
        let mut spec = FigureSpec::default();
        for &i in &fig_unique[pos] {
            cell_seconds += outputs[i].1 / claims[i] as f64;
            spec.add(&outputs[i].2);
        }
        let dedup_shared_with: Vec<&'static str> = figures
            .iter()
            .enumerate()
            .filter(|&(other, _)| {
                other != pos
                    && fig_unique[other]
                        .iter()
                        .any(|i| fig_unique[pos].contains(i))
            })
            .map(|(_, f)| f.name)
            .collect();
        runs.push(FigureRun {
            name: fig.name,
            table,
            cells: indices.len(),
            fresh_cells: *fresh,
            simulated_cycles,
            cell_seconds,
            dedup_shared_with,
            spec,
        });
    }

    let (mut solo_cells, mut solo_cell_seconds) = (0, 0.0);
    let (mut multi_cells, mut multi_cell_seconds) = (0, 0.0);
    let mut spec = FigureSpec::default();
    for (cell, (_, secs, telemetry)) in jobs.iter().zip(&outputs) {
        if cell.cores() > 1 {
            multi_cells += 1;
            multi_cell_seconds += secs;
        } else {
            solo_cells += 1;
            solo_cell_seconds += secs;
        }
        spec.add(telemetry);
    }

    SweepReport {
        figures: runs,
        threads: config.threads,
        wall: start.elapsed(),
        unique_cells: jobs.len(),
        simulated_cycles: outputs.iter().map(|(o, _, _)| o.cycles()).sum(),
        solo_cells,
        solo_cell_seconds,
        multi_cells,
        multi_cell_seconds,
        spec,
    }
}

/// Drains `jobs` from a shared queue on `threads` workers; returns each
/// cell's output, its single-cell wall time, and its speculation
/// telemetry, indexed like `jobs`.
fn run_cells(
    jobs: &[Cell],
    threads: usize,
    gate: GateMode,
) -> Vec<(CellOutput, f64, SpecTelemetry)> {
    let queue: SegQueue<usize> = SegQueue::new();
    for i in 0..jobs.len() {
        queue.push(i);
    }
    let slots: Vec<Mutex<Option<(CellOutput, f64, SpecTelemetry)>>> =
        jobs.iter().map(|_| Mutex::new(None)).collect();
    let workers = threads.min(jobs.len()).max(1);
    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| {
                while let Some(i) = queue.pop() {
                    let t0 = Instant::now();
                    let (output, telemetry) = run_cell_spec(&jobs[i], gate);
                    let secs = t0.elapsed().as_secs_f64();
                    *slots[i].lock().expect("result slot") = Some((output, secs, telemetry));
                }
            });
        }
    })
    .expect("sweep worker panicked");
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot")
                .expect("queue drained, every slot filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_from_env_defaults_to_parallelism() {
        // No env override in the test runner process is guaranteed, so
        // just assert the invariants the sweep relies on.
        let c = SweepConfig::from_env();
        assert!(c.threads >= 1);
        assert!(!c.verify);
    }

    #[test]
    fn selected_sweep_matches_serial_tables() {
        let config = SweepConfig {
            threads: 3,
            verify: false,
            gate: GateMode::default(),
        };
        let report = sweep_selected(&["fig13", "fig12"], Scale::Quick, &config);
        assert_eq!(report.figures.len(), 2);
        assert_eq!(report.figures[0].name, "fig13");
        assert_eq!(report.figures[0].cells, 0, "fig13 is pure analysis");
        let serial = crate::figures::fig12(Scale::Quick);
        assert_eq!(
            report.figures[1].table.render(),
            serial.render(),
            "parallel fig12 table must be bit-identical to serial"
        );
        assert_eq!(report.unique_cells, 3);
        assert!(report.figures[1].simulated_cycles > 0);
    }

    #[test]
    #[should_panic(expected = "unknown figure")]
    fn unknown_figure_panics() {
        sweep_selected(
            &["fig99"],
            Scale::Quick,
            &SweepConfig {
                threads: 1,
                verify: false,
                gate: GateMode::default(),
            },
        );
    }

    #[test]
    fn shared_cells_are_attributed_once() {
        // fig16 and fig17 share nine 1-thread cells (Sequential, HASTM,
        // and STM per structure); the second figure must count them as
        // non-fresh.
        let config = SweepConfig {
            threads: 4,
            verify: false,
            gate: GateMode::default(),
        };
        let report = sweep_selected(&["fig16", "fig17"], Scale::Quick, &config);
        let f16 = &report.figures[0];
        let f17 = &report.figures[1];
        assert_eq!(f16.fresh_cells, f16.cells);
        assert_eq!(f17.fresh_cells, f17.cells - 9, "9 shared cells");
        assert_eq!(report.unique_cells, f16.cells + f17.cells - 9);
    }
}
