//! Determinism of the phased-policy comparison: every `PhasePoint` is a
//! pure function of `(case, scale)` — the three gate admission modes are
//! schedule-identical, and host-thread placement of the sweep cannot leak
//! into simulated results. A Phased run must therefore be bit-identical
//! across `--gate quantum|perop|spec` and across 1/4/8 host sweep
//! threads; any drift means host concurrency or gate bookkeeping leaked
//! into the simulated phase machine.

use hastm_bench::phases::{phase_cases, phase_points, run_phase_case, PhaseCase, PhasePoint};
use hastm_bench::Scale;
use hastm_sim::GateMode;

const SCALE: Scale = Scale::Quick;

/// Runs every case fanned out over `threads` host workers (cases are
/// dealt round-robin), returning points in case order.
fn points_on_host_threads(threads: usize) -> Vec<PhasePoint> {
    let cases = phase_cases();
    let mut slots: Vec<Option<PhasePoint>> = vec![None; cases.len()];
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for worker in 0..threads {
            let cases: Vec<(usize, PhaseCase)> = cases
                .iter()
                .copied()
                .enumerate()
                .skip(worker)
                .step_by(threads)
                .collect();
            handles.push(scope.spawn(move || {
                cases
                    .into_iter()
                    .map(|(i, case)| (i, run_phase_case(case, SCALE, GateMode::Quantum)))
                    .collect::<Vec<_>>()
            }));
        }
        for handle in handles {
            for (i, point) in handle.join().expect("worker panicked") {
                slots[i] = Some(point);
            }
        }
    });
    slots.into_iter().map(|p| p.expect("all cases ran")).collect()
}

#[test]
fn phase_points_are_bit_identical_across_gate_modes() {
    let quantum = phase_points(SCALE, GateMode::Quantum);
    let perop = phase_points(SCALE, GateMode::PerOp);
    let spec = phase_points(SCALE, GateMode::Speculative);
    assert_eq!(
        quantum, perop,
        "quantum and per-op gates produced different phase points"
    );
    assert_eq!(
        quantum, spec,
        "quantum and speculative gates produced different phase points"
    );
    // Non-vacuity: the phased rows actually exercised the controller.
    assert!(
        quantum.iter().any(|p| p.transitions > 0),
        "no phased point published a transition; the comparison is idle"
    );
}

#[test]
fn phase_points_are_bit_identical_across_host_thread_counts() {
    let serial = points_on_host_threads(1);
    for threads in [4usize, 8] {
        let parallel = points_on_host_threads(threads);
        assert_eq!(
            serial, parallel,
            "{threads} host threads produced different phase points than 1"
        );
    }
}
