//! Mutation test for the golden cross-gate comparison.
//!
//! The `spec-seeded-bug` feature makes the simulator's speculation
//! conflict detector skip the last-writer check for one line class
//! (`line.0 % 8 < 2`, see `MemSystem::spec_check`). A speculative run
//! whose only inversions land on that class is erroneously *certified*
//! instead of rolled back, so its `CellOutput` keeps a schedule the
//! quantum gate never produced. The golden test's cell-level comparison
//! (`gate_modes_produce_bit_identical_outputs`) is exactly the detector
//! for that: this test re-runs its spec-vs-quantum comparison over the
//! deepest multi-core figures and asserts the mutation *is* caught —
//! at least one cell must diverge. The unmutated twin asserts the same
//! slice is clean, so the detector reacts to the planted hole, not to
//! its own noise.
//!
//! Run with:
//!
//! ```text
//! cargo test -p hastm-bench --features spec-seeded-bug --test spec_mutation
//! cargo test -p hastm-bench --test spec_mutation   # unmutated: green
//! ```

use hastm_bench::figures::{run_cell_gated, FIGURES};
use hastm_bench::Scale;
use hastm_sim::GateMode;

/// Spec-vs-quantum `CellOutput` comparison over the multi-core figures
/// the golden cross-gate test sweeps; returns the diverging cell labels.
fn diverging_cells() -> Vec<String> {
    let scale = Scale::Quick;
    let mut diverged = Vec::new();
    for name in ["fig11", "fig14", "fig21"] {
        let fig = FIGURES.iter().find(|f| f.name == name).expect(name);
        for cell in (fig.cells)(scale) {
            let spec = run_cell_gated(&cell, GateMode::Speculative);
            let quantum = run_cell_gated(&cell, GateMode::Quantum);
            if spec != quantum {
                diverged.push(format!("{name}/{}", cell.label()));
            }
        }
    }
    diverged
}

#[cfg(feature = "spec-seeded-bug")]
#[test]
fn golden_cross_gate_comparison_catches_the_seeded_conflict_skip() {
    let diverged = diverging_cells();
    assert!(
        !diverged.is_empty(),
        "the seeded speculation bug must surface as a spec-vs-quantum divergence"
    );
}

#[cfg(not(feature = "spec-seeded-bug"))]
#[test]
fn spec_gate_is_clean_on_the_same_slice_without_the_mutation() {
    let diverged = diverging_cells();
    assert!(
        diverged.is_empty(),
        "unmutated spec gate diverged from quantum: {diverged:?}"
    );
}
