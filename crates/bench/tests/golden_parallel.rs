//! Golden determinism test: the parallel sweep's rendered tables must be
//! byte-identical to the serial builders' for a representative slice of
//! the evaluation — a deep-thread figure (fig11), a single-thread ratio
//! figure (fig16), and an interference-machine scaling figure (fig21) —
//! at CI scale. `verify: true` additionally re-runs every cell serially
//! inside the sweep and asserts each `CellOutput` (cycles, counters,
//! digest, txn stats) matches the parallel one exactly.

use hastm_bench::{fig11, fig16, fig21, sweep_selected, Scale, SweepConfig};

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let scale = Scale::Quick; // = HASTM_BENCH_SCALE=ci
    let config = SweepConfig {
        threads: 4,
        verify: true,
    };
    let report = sweep_selected(&["fig11", "fig16", "fig21"], scale, &config);
    let serial = [fig11(scale), fig16(scale), fig21(scale)];
    assert_eq!(report.figures.len(), serial.len());
    for (run, serial_table) in report.figures.iter().zip(&serial) {
        assert_eq!(
            run.table.render(),
            serial_table.render(),
            "{}: parallel table must be byte-identical to serial",
            run.name
        );
    }
    assert!(report.unique_cells > 0);
    assert!(report.simulated_cycles > 0);
}
