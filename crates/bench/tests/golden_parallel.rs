//! Golden determinism tests for the figure sweep.
//!
//! 1. The parallel sweep's rendered tables must be byte-identical to the
//!    serial builders' for a representative slice of the evaluation — a
//!    deep-thread figure (fig11), the time-breakdown figure (fig12), the
//!    HASTM counterpart sweep (fig15), single-thread ratio figures
//!    (fig16/fig17), and an interference-machine scaling figure (fig21) —
//!    at CI scale.
//!    `verify: true` additionally re-runs every cell serially inside the
//!    sweep and asserts each `CellOutput` (cycles, counters, digest, txn
//!    stats) matches the parallel one exactly.
//! 2. The run-until-overtaken quantum gate must admit exactly the per-op
//!    reference schedule, and the optimistic speculative gate must
//!    certify (or roll back to) exactly the quantum schedule: every cell
//!    of the cross-scheduler slice produces a bit-equal `CellOutput` —
//!    including the embedded `RunReport` (all per-core and machine
//!    counters) — under all three `GateMode`s, and the rendered tables
//!    match byte-for-byte.
//!
//! The cross-scheduler slice covers fig13 (pure analysis, exercising the
//! zero-cell path), fig14 (the best-case HyTM scaling figure) and fig21,
//! plus fig11 — the deepest multi-core figure — and two more scaling
//! figures for breadth.

use hastm_bench::figures::{run_cell_gated, FIGURES};
use hastm_bench::{fig11, fig12, fig15, fig16, fig17, fig21, sweep_selected, Scale, SweepConfig};
use hastm_sim::GateMode;

#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    let scale = Scale::Quick; // = HASTM_BENCH_SCALE=ci
    let config = SweepConfig {
        threads: 4,
        verify: true,
        gate: GateMode::default(),
    };
    let report = sweep_selected(
        &["fig11", "fig12", "fig15", "fig16", "fig17", "fig21"],
        scale,
        &config,
    );
    let serial = [
        fig11(scale),
        fig12(scale),
        fig15(scale),
        fig16(scale),
        fig17(scale),
        fig21(scale),
    ];
    assert_eq!(report.figures.len(), serial.len());
    for (run, serial_table) in report.figures.iter().zip(&serial) {
        assert_eq!(
            run.table.render(),
            serial_table.render(),
            "{}: parallel table must be byte-identical to serial",
            run.name
        );
    }
    assert!(report.unique_cells > 0);
    assert!(report.simulated_cycles > 0);
}

#[test]
fn gate_modes_produce_bit_identical_outputs() {
    let scale = Scale::Quick;
    let figs = ["fig11", "fig13", "fig14", "fig15", "fig17", "fig21"];

    // Cell-level: full CellOutput (cycles + RunReport counters + digest +
    // txn stats) bit-equality per cell, across every cell the slice
    // declares.
    let mut cells_checked = 0;
    for name in figs {
        let fig = FIGURES.iter().find(|f| f.name == name).expect(name);
        for cell in (fig.cells)(scale) {
            let per_op = run_cell_gated(&cell, GateMode::PerOp);
            let quantum = run_cell_gated(&cell, GateMode::Quantum);
            let spec = run_cell_gated(&cell, GateMode::Speculative);
            assert_eq!(
                per_op,
                quantum,
                "{name}: cell {} diverged across gate modes",
                cell.label()
            );
            assert_eq!(
                spec,
                quantum,
                "{name}: cell {} diverged under the speculative gate",
                cell.label()
            );
            cells_checked += 1;
        }
    }
    assert!(
        cells_checked > 0,
        "cross-scheduler slice declared no cells to compare"
    );

    // Table-level: the whole sweep renders byte-identically under any
    // gate (fig13's zero-cell analysis table included).
    let render = |gate: GateMode| {
        let config = SweepConfig {
            threads: 2,
            verify: false,
            gate,
        };
        sweep_selected(&figs, scale, &config)
            .figures
            .iter()
            .map(|f| f.table.render())
            .collect::<Vec<_>>()
    };
    let quantum_tables = render(GateMode::Quantum);
    assert_eq!(
        render(GateMode::PerOp),
        quantum_tables,
        "sweep tables must not depend on the gate mode"
    );
    assert_eq!(
        render(GateMode::Speculative),
        quantum_tables,
        "sweep tables must not depend on the speculative gate"
    );
}
