//! Smoke tests: every figure binary must run to completion at quick scale
//! and print a well-formed table. These catch wiring rot (a figure whose
//! config panics, a scheme that deadlocks at some thread count) without
//! asserting anything about the numbers themselves.

use std::process::Command;

/// Runs one figure binary at quick scale and returns its stdout.
fn run_fig(exe: &str) -> String {
    let out = Command::new(exe)
        .env("HASTM_BENCH_SCALE", "quick")
        .output()
        .unwrap_or_else(|e| panic!("failed to launch {exe}: {e}"));
    assert!(
        out.status.success(),
        "{exe} exited with {:?}\nstderr:\n{}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("figure output is UTF-8")
}

/// A figure table is recognizable by its title line and at least one data
/// row containing a numeric cell.
fn assert_looks_like_table(fig: &str, stdout: &str) {
    assert!(
        stdout.contains(&format!("Figure {fig}")),
        "output lacks a 'Figure {fig}' title:\n{stdout}"
    );
    // Data rows follow the dashed header separator and carry numeric
    // cells (ratios like "1.07" or raw counts).
    let data_lines = stdout
        .lines()
        .skip_while(|l| !l.starts_with('-'))
        .skip(1)
        .filter(|l| l.chars().any(|c| c.is_ascii_digit()))
        .count();
    assert!(
        data_lines >= 1,
        "no data rows in figure {fig} output:\n{stdout}"
    );
}

macro_rules! fig_smoke {
    ($($name:ident, $bin:literal, $fig:literal;)*) => {$(
        #[test]
        fn $name() {
            let stdout = run_fig(env!(concat!("CARGO_BIN_EXE_", $bin)));
            assert_looks_like_table($fig, &stdout);
        }
    )*};
}

fig_smoke! {
    fig11_runs, "fig11", "11";
    fig12_runs, "fig12", "12";
    fig13_runs, "fig13", "13";
    fig15_runs, "fig15", "15";
    fig16_runs, "fig16", "16";
    fig17_runs, "fig17", "17";
    fig18_runs, "fig18", "18";
    fig19_runs, "fig19", "19";
    fig20_runs, "fig20", "20";
    fig21_runs, "fig21", "21";
    fig22_runs, "fig22", "22";
}
