//! Criterion benchmarks of the barrier code paths: simulated-cycle cost of
//! each barrier family, reported via host wall time of fixed simulated
//! workloads (the simulated-cycle numbers themselves are printed by the
//! `figNN` binaries).

use criterion::{criterion_group, criterion_main, Criterion};
use hastm::{Granularity, ModePolicy, StmConfig, StmRuntime, TxThread};
use hastm_sim::{Machine, MachineConfig};

fn run_reads(config: StmConfig, txns: u32, reads_per_txn: u32) -> u64 {
    let mut machine = Machine::new(MachineConfig::default());
    let runtime = StmRuntime::new(&mut machine, config);
    machine
        .run_one(|cpu| {
            let mut tx = TxThread::new(&runtime, cpu);
            let objs: Vec<_> = (0..reads_per_txn).map(|_| tx.alloc_obj(1)).collect();
            for _ in 0..txns {
                tx.atomic(|tx| {
                    let mut acc = 0;
                    for o in &objs {
                        acc += tx.read_word(*o, 0)?;
                        acc += tx.read_word(*o, 0)?; // reused read
                    }
                    Ok(acc)
                });
            }
            tx.cpu().now()
        })
        .0
}

fn bench_read_barriers(c: &mut Criterion) {
    let mut group = c.benchmark_group("read_barriers");
    group.sample_size(15);
    let cases: [(&str, StmConfig); 4] = [
        ("stm", StmConfig::stm(Granularity::CacheLine)),
        (
            "hastm_cautious",
            StmConfig::hastm_cautious(Granularity::CacheLine),
        ),
        (
            "hastm_aggressive",
            StmConfig::hastm(Granularity::CacheLine, ModePolicy::SingleThreadAggressive),
        ),
        (
            "hastm_object",
            StmConfig::hastm(Granularity::Object, ModePolicy::SingleThreadAggressive),
        ),
    ];
    for (name, cfg) in cases {
        group.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(run_reads(cfg.clone(), 50, 24)))
        });
    }
    group.finish();
}

fn bench_commit_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("commit_paths");
    group.sample_size(15);
    group.bench_function("stm_commit_validation", |b| {
        b.iter(|| run_reads(StmConfig::stm(Granularity::CacheLine), 30, 64))
    });
    group.bench_function("hastm_counter_validation", |b| {
        b.iter(|| {
            run_reads(
                StmConfig::hastm(Granularity::CacheLine, ModePolicy::SingleThreadAggressive),
                30,
                64,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_read_barriers, bench_commit_paths);
criterion_main!(benches);
