//! Criterion wrapper over representative figure experiments, so
//! `cargo bench` exercises the full evaluation pipeline end to end (the
//! complete per-figure tables come from the `figNN` binaries; see
//! EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, Criterion};
use hastm_bench::Scale;
use hastm_workloads::{
    generate_stream, run_kernel, run_workload, KernelParams, Scheme, Structure, WorkloadConfig,
};

fn bench_workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure_workloads");
    group.sample_size(10);
    for (structure, scheme) in [
        (Structure::BTree, Scheme::Stm),
        (Structure::BTree, Scheme::Hastm),
        (Structure::Bst, Scheme::Hastm),
        (Structure::HashTable, Scheme::Hytm),
    ] {
        let name = format!("{structure}_{}", scheme.label().to_lowercase());
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut cfg = WorkloadConfig::paper_default(structure, scheme, 1);
                cfg.ops_per_thread = 120;
                cfg.prepopulate = 128;
                cfg.key_range = 256;
                std::hint::black_box(run_workload(&cfg).cycles)
            })
        });
    }
    group.finish();
}

fn bench_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure15_kernel");
    group.sample_size(10);
    let params = KernelParams {
        sections: 40,
        ..KernelParams::default()
    };
    let stream = generate_stream(&params);
    for scheme in [Scheme::Stm, Scheme::Hastm, Scheme::Hytm] {
        group.bench_function(scheme.label(), |b| {
            b.iter(|| std::hint::black_box(run_kernel(scheme, &stream).cycles))
        });
    }
    group.finish();
}

fn bench_figure_runner(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure_tables");
    group.sample_size(10);
    group.bench_function("fig13_workload_analysis", |b| {
        b.iter(|| std::hint::black_box(hastm_bench::fig13().rows.len()))
    });
    group.bench_function("fig12_breakdown_quick", |b| {
        b.iter(|| std::hint::black_box(hastm_bench::fig12(Scale::Quick).rows.len()))
    });
    group.finish();
}

criterion_group!(benches, bench_workloads, bench_kernel, bench_figure_runner);
criterion_main!(benches);
