//! Criterion micro-benchmarks of the simulator substrate itself: host-side
//! throughput of simulated loads/stores, mark instructions, and the
//! deterministic scheduler. These measure the *reproduction's* performance
//! (how fast we can simulate), not simulated cycles.

use criterion::{criterion_group, criterion_main, Criterion};
use hastm_sim::{Addr, Machine, MachineConfig};

fn bench_single_core_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_single_core");
    group.sample_size(20);

    group.bench_function("load_hit_x1000", |b| {
        b.iter(|| {
            let mut m = Machine::new(MachineConfig::default());
            m.run_one(|cpu| {
                cpu.store_u64(Addr(0x100), 1);
                for _ in 0..1000 {
                    std::hint::black_box(cpu.load_u64(Addr(0x100)));
                }
            });
        })
    });

    group.bench_function("load_miss_x1000", |b| {
        b.iter(|| {
            let mut m = Machine::new(MachineConfig::default());
            m.run_one(|cpu| {
                for i in 0..1000u64 {
                    std::hint::black_box(cpu.load_u64(Addr(0x10000 + i * 64)));
                }
            });
        })
    });

    group.bench_function("mark_set_test_x1000", |b| {
        b.iter(|| {
            let mut m = Machine::new(MachineConfig::default());
            m.run_one(|cpu| {
                for i in 0..1000u64 {
                    let a = Addr(0x10000 + (i % 64) * 64);
                    cpu.load_set_mark_u64(a);
                    std::hint::black_box(cpu.load_test_mark_u64(a));
                }
            });
        })
    });
    group.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_scheduler");
    group.sample_size(10);
    for cores in [2usize, 4] {
        group.bench_function(format!("{cores}core_interleaved_x500"), |b| {
            b.iter(|| {
                let mut m = Machine::new(MachineConfig::with_cores(cores));
                let workers: Vec<hastm_sim::WorkerFn<'_>> = (0..cores)
                    .map(|id| {
                        Box::new(move |cpu: &mut hastm_sim::Cpu| {
                            for i in 0..500u64 {
                                cpu.store_u64(Addr(0x1000 + (id as u64) * 8), i);
                            }
                        }) as hastm_sim::WorkerFn<'_>
                    })
                    .collect();
                m.run(workers);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single_core_ops, bench_scheduler);
criterion_main!(benches);
