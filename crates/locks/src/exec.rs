//! Sequential and coarse-lock critical-section executors implementing the
//! scheme-independent [`TmContext`] interface.

use hastm::{ObjRef, StmRuntime, TmContext, TxResult};
use hastm_sim::Cpu;

use crate::spinlock::SpinLock;

/// Direct (unsynchronized) access to simulated memory through the common
/// context interface. Used standalone for sequential baselines and inside
/// [`LockExec`] critical sections.
pub struct DirectCtx<'x, 'm> {
    cpu: &'x mut Cpu<'m>,
    runtime: &'x StmRuntime,
}

impl std::fmt::Debug for DirectCtx<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DirectCtx").finish_non_exhaustive()
    }
}

impl<'x, 'm> DirectCtx<'x, 'm> {
    /// Wraps a CPU and runtime (the runtime is used only for allocation).
    pub fn new(runtime: &'x StmRuntime, cpu: &'x mut Cpu<'m>) -> Self {
        DirectCtx { cpu, runtime }
    }
}

impl TmContext for DirectCtx<'_, '_> {
    fn ctx_read(&mut self, obj: ObjRef, index: u32) -> TxResult<u64> {
        Ok(self.cpu.load_u64(obj.word(index)))
    }

    fn ctx_write(&mut self, obj: ObjRef, index: u32, value: u64) -> TxResult<()> {
        self.cpu.store_u64(obj.word(index), value);
        Ok(())
    }

    fn ctx_alloc(&mut self, data_words: u32) -> ObjRef {
        let (obj, header) = self.runtime.alloc_obj_shell(self.cpu, data_words);
        self.cpu.store_u64(obj.header(), header);
        obj
    }

    fn ctx_work(&mut self, cycles: u64) {
        self.cpu.exec(cycles);
    }
}

/// Sequential executor: runs critical sections with no synchronization at
/// all. This is the paper's "sequential execution time" baseline in Figure
/// 16 ("an ideal unbounded HW TM implementation would execute no faster
/// than the sequential execution time").
pub struct SeqExec<'c, 'm> {
    cpu: &'c mut Cpu<'m>,
    runtime: &'c StmRuntime,
}

impl std::fmt::Debug for SeqExec<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SeqExec").finish_non_exhaustive()
    }
}

impl<'c, 'm> SeqExec<'c, 'm> {
    /// Creates a sequential executor.
    pub fn new(runtime: &'c StmRuntime, cpu: &'c mut Cpu<'m>) -> Self {
        SeqExec { cpu, runtime }
    }

    /// Runs one critical section.
    pub fn atomic<R>(&mut self, mut f: impl FnMut(&mut dyn TmContext) -> TxResult<R>) -> R {
        let mut ctx = DirectCtx::new(self.runtime, self.cpu);
        f(&mut ctx).expect("sequential execution cannot abort")
    }

    /// Allocates an object.
    pub fn alloc_obj(&mut self, data_words: u32) -> ObjRef {
        let mut ctx = DirectCtx::new(self.runtime, self.cpu);
        ctx.ctx_alloc(data_words)
    }

    /// The executor's CPU, for clock reads and stalls outside sections.
    pub fn cpu(&mut self) -> &mut Cpu<'m> {
        self.cpu
    }
}

/// Coarse-grained-lock executor: every critical section acquires one
/// global spinlock.
pub struct LockExec<'c, 'm> {
    cpu: &'c mut Cpu<'m>,
    runtime: &'c StmRuntime,
    lock: SpinLock,
}

impl std::fmt::Debug for LockExec<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LockExec")
            .field("lock", &self.lock)
            .finish_non_exhaustive()
    }
}

impl<'c, 'm> LockExec<'c, 'm> {
    /// Creates an executor guarding its sections with `lock` (share the
    /// same `SpinLock` across threads for a global lock).
    pub fn new(runtime: &'c StmRuntime, cpu: &'c mut Cpu<'m>, lock: SpinLock) -> Self {
        LockExec { cpu, runtime, lock }
    }

    /// Runs one critical section under the lock.
    pub fn atomic<R>(&mut self, mut f: impl FnMut(&mut dyn TmContext) -> TxResult<R>) -> R {
        self.lock.acquire(self.cpu);
        let r = {
            let mut ctx = DirectCtx::new(self.runtime, self.cpu);
            f(&mut ctx).expect("lock-based execution cannot abort")
        };
        self.lock.release(self.cpu);
        r
    }

    /// Allocates an object (outside the lock; allocation is thread-safe).
    pub fn alloc_obj(&mut self, data_words: u32) -> ObjRef {
        let mut ctx = DirectCtx::new(self.runtime, self.cpu);
        ctx.ctx_alloc(data_words)
    }

    /// The executor's CPU, for clock reads and stalls outside sections.
    pub fn cpu(&mut self) -> &mut Cpu<'m> {
        self.cpu
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hastm::{Granularity, StmConfig};
    use hastm_sim::{Machine, MachineConfig, WorkerFn};

    fn setup(cores: usize) -> (Machine, StmRuntime) {
        let mut m = Machine::new(MachineConfig::with_cores(cores));
        let rt = StmRuntime::new(&mut m, StmConfig::stm(Granularity::CacheLine));
        (m, rt)
    }

    #[test]
    fn seq_exec_roundtrip() {
        let (mut m, rt) = setup(1);
        let (v, _) = m.run_one(|cpu| {
            let mut ex = SeqExec::new(&rt, cpu);
            let o = ex.alloc_obj(1);
            ex.atomic(|ctx| ctx.ctx_write(o, 0, 3));
            ex.atomic(|ctx| ctx.ctx_read(o, 0))
        });
        assert_eq!(v, 3);
    }

    #[test]
    fn lock_exec_serializes_increments() {
        let (mut m, rt) = setup(4);
        let lock = SpinLock::alloc(rt.heap());
        let (o, _) = m.run_one(|cpu| {
            let mut ex = SeqExec::new(&rt, cpu);
            ex.alloc_obj(1)
        });
        let rt_ref = &rt;
        let workers: Vec<WorkerFn<'_>> = (0..4)
            .map(|_| {
                Box::new(move |cpu: &mut hastm_sim::Cpu| {
                    let mut ex = LockExec::new(rt_ref, cpu, lock);
                    for _ in 0..25 {
                        ex.atomic(|ctx| {
                            let v = ctx.ctx_read(o, 0)?;
                            ctx.ctx_write(o, 0, v + 1)
                        });
                    }
                }) as WorkerFn<'_>
            })
            .collect();
        m.run(workers);
        assert_eq!(m.peek_u64(o.word(0)), 100);
    }
}
