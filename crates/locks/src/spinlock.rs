//! Spinlocks implemented with simulated CAS on simulated memory.

use hastm_sim::{Addr, Cpu, SimHeap};

/// A test-and-test-and-set spinlock with exponential backoff.
///
/// The lock word lives on its own cache line so acquisitions by different
/// cores contend only on coherence traffic for that line.
///
/// # Examples
///
/// ```
/// use hastm_locks::SpinLock;
/// use hastm_sim::{Machine, MachineConfig};
///
/// let mut machine = Machine::new(MachineConfig::default());
/// let lock = SpinLock::alloc(&machine.heap());
/// machine.run_one(|cpu| {
///     lock.acquire(cpu);
///     // ... critical section ...
///     lock.release(cpu);
/// });
/// ```
#[derive(Copy, Clone, Debug)]
pub struct SpinLock {
    word: Addr,
}

impl SpinLock {
    /// Allocates a lock on its own cache line (initially free).
    pub fn alloc(heap: &SimHeap) -> Self {
        SpinLock {
            word: heap.alloc_line(),
        }
    }

    /// The lock word's address.
    pub fn addr(&self) -> Addr {
        self.word
    }

    /// Spins until the lock is held by this core.
    pub fn acquire(&self, cpu: &mut Cpu<'_>) {
        let mut backoff = 4u64;
        loop {
            // Test-and-test-and-set: spin on a plain load first.
            if cpu.load_u64(self.word) == 0 && cpu.cas_u64(self.word, 0, 1) == 0 {
                return;
            }
            cpu.tick(backoff);
            backoff = (backoff * 2).min(1024);
        }
    }

    /// Attempts one acquisition without spinning.
    pub fn try_acquire(&self, cpu: &mut Cpu<'_>) -> bool {
        cpu.load_u64(self.word) == 0 && cpu.cas_u64(self.word, 0, 1) == 0
    }

    /// Releases the lock.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the lock was not held.
    pub fn release(&self, cpu: &mut Cpu<'_>) {
        debug_assert_eq!(cpu.load_u64(self.word), 1, "release of free lock");
        cpu.store_u64(self.word, 0);
    }
}

/// A FIFO ticket lock: fair under contention, at the cost of a second
/// contended word.
#[derive(Copy, Clone, Debug)]
pub struct TicketLock {
    /// Next ticket to hand out.
    next: Addr,
    /// Ticket currently being served.
    serving: Addr,
}

impl TicketLock {
    /// Allocates a ticket lock (two words on one line; the serving word is
    /// what waiters spin on).
    pub fn alloc(heap: &SimHeap) -> Self {
        let base = heap.alloc_line();
        TicketLock {
            next: base,
            serving: base.offset(8),
        }
    }

    /// Takes a ticket and spins until served.
    pub fn acquire(&self, cpu: &mut Cpu<'_>) {
        // Fetch-and-increment via CAS loop.
        let my_ticket = loop {
            let t = cpu.load_u64(self.next);
            if cpu.cas_u64(self.next, t, t + 1) == t {
                break t;
            }
            cpu.tick(8);
        };
        loop {
            if cpu.load_u64(self.serving) == my_ticket {
                return;
            }
            cpu.tick(16);
        }
    }

    /// Passes the lock to the next ticket holder.
    pub fn release(&self, cpu: &mut Cpu<'_>) {
        let s = cpu.load_u64(self.serving);
        cpu.store_u64(self.serving, s + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hastm_sim::{Machine, MachineConfig, WorkerFn};

    fn counter_test(acquire_release: impl Fn(&mut hastm_sim::Cpu, Addr) + Sync) -> u64 {
        let mut m = Machine::new(MachineConfig::with_cores(4));
        let heap = m.heap();
        let counter = heap.alloc_line();
        let f = &acquire_release;
        let workers: Vec<WorkerFn<'_>> = (0..4)
            .map(|_| {
                Box::new(move |cpu: &mut hastm_sim::Cpu| {
                    for _ in 0..25 {
                        f(cpu, counter);
                    }
                }) as WorkerFn<'_>
            })
            .collect();
        m.run(workers);
        m.peek_u64(counter)
    }

    #[test]
    fn spinlock_mutual_exclusion() {
        let mut m = Machine::new(MachineConfig::with_cores(4));
        let heap = m.heap();
        let lock = SpinLock::alloc(&heap);
        let counter = heap.alloc_line();
        let workers: Vec<WorkerFn<'_>> = (0..4)
            .map(|_| {
                Box::new(move |cpu: &mut hastm_sim::Cpu| {
                    for _ in 0..25 {
                        lock.acquire(cpu);
                        let v = cpu.load_u64(counter);
                        cpu.tick(10); // widen the race window
                        cpu.store_u64(counter, v + 1);
                        lock.release(cpu);
                    }
                }) as WorkerFn<'_>
            })
            .collect();
        m.run(workers);
        assert_eq!(m.peek_u64(counter), 100);
    }

    #[test]
    fn unlocked_increments_race() {
        // Sanity check that the mutual-exclusion test actually needed the
        // lock: unsynchronized read-tick-write loses updates.
        let total = counter_test(|cpu, counter| {
            let v = cpu.load_u64(counter);
            cpu.tick(10);
            cpu.store_u64(counter, v + 1);
        });
        assert!(total < 100, "expected lost updates, got {total}");
    }

    #[test]
    fn try_acquire_fails_when_held() {
        let mut m = Machine::new(MachineConfig::default());
        let lock = SpinLock::alloc(&m.heap());
        m.run_one(|cpu| {
            assert!(lock.try_acquire(cpu));
            assert!(!lock.try_acquire(cpu));
            lock.release(cpu);
            assert!(lock.try_acquire(cpu));
            lock.release(cpu);
        });
    }

    #[test]
    fn ticket_lock_mutual_exclusion_and_fairness() {
        let mut m = Machine::new(MachineConfig::with_cores(4));
        let heap = m.heap();
        let lock = TicketLock::alloc(&heap);
        let counter = heap.alloc_line();
        let workers: Vec<WorkerFn<'_>> = (0..4)
            .map(|_| {
                Box::new(move |cpu: &mut hastm_sim::Cpu| {
                    for _ in 0..10 {
                        lock.acquire(cpu);
                        let v = cpu.load_u64(counter);
                        cpu.tick(10);
                        cpu.store_u64(counter, v + 1);
                        lock.release(cpu);
                    }
                }) as WorkerFn<'_>
            })
            .collect();
        m.run(workers);
        assert_eq!(m.peek_u64(counter), 40);
    }

    #[test]
    fn contended_lock_costs_more_than_uncontended() {
        let run = |cores: usize| {
            let mut m = Machine::new(MachineConfig::with_cores(cores));
            let heap = m.heap();
            let lock = SpinLock::alloc(&heap);
            let counter = heap.alloc_line();
            let per_core = 200 / cores as u64;
            let workers: Vec<WorkerFn<'_>> = (0..cores)
                .map(|_| {
                    Box::new(move |cpu: &mut hastm_sim::Cpu| {
                        for _ in 0..per_core {
                            lock.acquire(cpu);
                            let v = cpu.load_u64(counter);
                            cpu.tick(50);
                            cpu.store_u64(counter, v + 1);
                            lock.release(cpu);
                        }
                    }) as WorkerFn<'_>
                })
                .collect();
            m.run(workers).makespan()
        };
        let t1 = run(1);
        let t4 = run(4);
        // A coarse lock with fixed total work cannot speed up and pays
        // coherence overhead: 4-core makespan must not beat single core by
        // more than noise.
        assert!(
            t4 * 10 >= t1 * 9,
            "coarse lock should not scale: t1={t1} t4={t4}"
        );
    }
}
