//! # hastm-locks — lock-based baselines on simulated memory
//!
//! The paper's lock baselines (Figures 11, 16, 18–20) use coarse-grained
//! locking: each data-structure operation acquires one global lock. These
//! spinlocks live *in simulated memory*, so acquisition traffic (the lock
//! line ping-ponging between cores) is modeled by the same cache hierarchy
//! the TM systems run on.
//!
//! The crate also provides the sequential and lock-based critical-section
//! executors used by the workload drivers.

pub mod exec;
pub mod spinlock;

pub use exec::{DirectCtx, LockExec, SeqExec};
pub use spinlock::{SpinLock, TicketLock};
