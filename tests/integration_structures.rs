//! Cross-crate integration: the evaluation data structures stay correct
//! under concurrent transactional mutation on every scheme.

use hastm::{ObjRef, OracleMode, StmRuntime, TmContext, TxResult};
use hastm_locks::SpinLock;
use hastm_sim::{Machine, MachineConfig, WorkerFn};
use hastm_workloads::{BTree, Bst, HashTable, Scheme, ThreadExec, TxMap};
use std::collections::BTreeMap;
use std::sync::Mutex;

#[derive(Copy, Clone)]
enum Kind {
    Hash,
    Bst,
    BTree,
}

#[derive(Copy, Clone)]
enum Map {
    Hash(HashTable),
    Bst(Bst),
    BTree(BTree),
}

impl Map {
    fn create(kind: Kind, ctx: &mut dyn TmContext) -> TxResult<Map> {
        Ok(match kind {
            Kind::Hash => Map::Hash(HashTable::create(ctx, 32)),
            Kind::Bst => Map::Bst(Bst::create(ctx)),
            Kind::BTree => Map::BTree(BTree::create(ctx)?),
        })
    }
    fn insert(&self, ctx: &mut dyn TmContext, k: u64, v: u64) -> TxResult<bool> {
        match self {
            Map::Hash(m) => m.insert(ctx, k, v),
            Map::Bst(m) => m.insert(ctx, k, v),
            Map::BTree(m) => m.insert(ctx, k, v),
        }
    }
    fn remove(&self, ctx: &mut dyn TmContext, k: u64) -> TxResult<bool> {
        match self {
            Map::Hash(m) => m.remove(ctx, k),
            Map::Bst(m) => m.remove(ctx, k),
            Map::BTree(m) => m.remove(ctx, k),
        }
    }
    fn get(&self, ctx: &mut dyn TmContext, k: u64) -> TxResult<Option<u64>> {
        match self {
            Map::Hash(m) => m.get(ctx, k),
            Map::Bst(m) => m.get(ctx, k),
            Map::BTree(m) => m.get(ctx, k),
        }
    }
    fn len(&self, ctx: &mut dyn TmContext) -> TxResult<u64> {
        match self {
            Map::Hash(m) => m.len(ctx),
            Map::Bst(m) => m.len(ctx),
            Map::BTree(m) => m.len(ctx),
        }
    }
    fn check(&self, ctx: &mut dyn TmContext) -> TxResult<u64> {
        match self {
            Map::Hash(m) => m.len(ctx),
            Map::Bst(m) => m.check_invariants(ctx),
            Map::BTree(m) => m.check_invariants(ctx),
        }
    }
}

/// Concurrent mixed workload; afterwards the structure must satisfy its
/// invariants and the per-thread op effects must be reconcilable: every
/// key maps to a (thread, seq) stamp that thread really wrote.
fn concurrent_structure(kind: Kind, scheme: Scheme, cores: usize) {
    let mut machine = Machine::new(MachineConfig::with_cores(cores));
    let runtime = StmRuntime::new(
        &mut machine,
        scheme
            .stm_config(hastm::Granularity::CacheLine, cores)
            .with_oracle(OracleMode::Panic),
    );
    let lock = SpinLock::alloc(runtime.heap());
    let rt = &runtime;
    let (map, _) = machine.run_one(|cpu| {
        let mut ex = ThreadExec::new(Scheme::Sequential, rt, cpu, lock);
        ex.atomic(|ctx| Map::create(kind, ctx))
    });

    // Each thread stamps values with (thread id, op seq).
    let writes: Mutex<Vec<(u64, u64)>> = Mutex::new(Vec::new()); // (key, stamp)
    let writes_ref = &writes;
    let workers: Vec<WorkerFn<'_>> = (0..cores)
        .map(|tid| {
            Box::new(move |cpu: &mut hastm_sim::Cpu| {
                let mut ex = ThreadExec::new(scheme, rt, cpu, lock);
                let mut rng = 0xfeed_u64 ^ ((tid as u64) << 40) | 1;
                let mut mine = Vec::new();
                for seq in 0..150u64 {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    let key = rng % 64;
                    let stamp = ((tid as u64) << 32) | seq;
                    match rng % 10 {
                        0..=5 => {
                            ex.atomic(|ctx| map.get(ctx, key));
                        }
                        6..=8 => {
                            ex.atomic(|ctx| map.insert(ctx, key, stamp));
                            mine.push((key, stamp));
                        }
                        _ => {
                            ex.atomic(|ctx| map.remove(ctx, key));
                        }
                    }
                }
                writes_ref.lock().unwrap().extend(mine);
            }) as WorkerFn<'_>
        })
        .collect();
    machine.run(workers);

    // Post-run structural check + every surviving value traces back to a
    // write some thread actually performed.
    let written = writes.lock().unwrap().clone();
    machine.run_one(|cpu| {
        let mut ex = ThreadExec::new(Scheme::Sequential, rt, cpu, lock);
        ex.atomic(|ctx| {
            let n = map.check(ctx)?;
            let len = map.len(ctx)?;
            assert_eq!(n, len);
            for key in 0..64u64 {
                if let Some(stamp) = map.get(ctx, key)? {
                    assert!(
                        written.contains(&(key, stamp)),
                        "key {key} holds stamp {stamp:#x} nobody wrote"
                    );
                }
            }
            Ok(())
        });
    });

    // Settle the oracle's deferred serializability check (panics on any
    // unserializable commit under `OracleMode::Panic`).
    runtime.verify_serializability(&machine);
}

#[test]
fn hashtable_concurrent_hastm() {
    concurrent_structure(Kind::Hash, Scheme::Hastm, 4);
}

#[test]
fn hashtable_concurrent_lock() {
    concurrent_structure(Kind::Hash, Scheme::Lock, 4);
}

#[test]
fn bst_concurrent_stm() {
    concurrent_structure(Kind::Bst, Scheme::Stm, 4);
}

#[test]
fn bst_concurrent_hastm() {
    concurrent_structure(Kind::Bst, Scheme::Hastm, 4);
}

#[test]
fn bst_concurrent_hytm() {
    concurrent_structure(Kind::Bst, Scheme::Hytm, 3);
}

#[test]
fn btree_concurrent_hastm() {
    concurrent_structure(Kind::BTree, Scheme::Hastm, 4);
}

#[test]
fn btree_concurrent_naive_aggressive() {
    concurrent_structure(Kind::BTree, Scheme::NaiveAggressive, 4);
}

#[test]
fn btree_concurrent_stm() {
    concurrent_structure(Kind::BTree, Scheme::Stm, 3);
}

/// Single-threaded cross-structure agreement: all three structures given
/// the same op stream end with identical contents.
#[test]
fn structures_agree_on_contents() {
    let mut machine = Machine::new(MachineConfig::default());
    let runtime = StmRuntime::new(
        &mut machine,
        Scheme::Hastm.stm_config(hastm::Granularity::CacheLine, 1),
    );
    let lock = SpinLock::alloc(runtime.heap());
    let rt = &runtime;
    let mut finals: Vec<BTreeMap<u64, u64>> = Vec::new();
    for kind in [Kind::Hash, Kind::Bst, Kind::BTree] {
        let (contents, _) = machine.run_one(|cpu| {
            let mut ex = ThreadExec::new(Scheme::Hastm, rt, cpu, lock);
            let map = ex.atomic(|ctx| Map::create(kind, ctx));
            let mut rng = 777u64;
            for _ in 0..500 {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                let key = rng % 48;
                match rng % 3 {
                    0 => {
                        ex.atomic(|ctx| map.insert(ctx, key, key * 3));
                    }
                    1 => {
                        ex.atomic(|ctx| map.remove(ctx, key));
                    }
                    _ => {
                        ex.atomic(|ctx| map.get(ctx, key));
                    }
                }
            }
            let mut out = BTreeMap::new();
            ex.atomic(|ctx| {
                for key in 0..48u64 {
                    if let Some(v) = map.get(ctx, key)? {
                        out.insert(key, v);
                    }
                }
                Ok(())
            });
            out
        });
        finals.push(contents);
    }
    assert_eq!(finals[0], finals[1], "hash vs bst");
    assert_eq!(finals[1], finals[2], "bst vs btree");
    assert!(!finals[0].is_empty(), "test should leave residue");
}

/// Objects created inside aborted transactions never become reachable.
#[test]
fn aborted_inserts_invisible() {
    let mut machine = Machine::new(MachineConfig::default());
    let runtime = StmRuntime::new(
        &mut machine,
        Scheme::Stm.stm_config(hastm::Granularity::CacheLine, 1),
    );
    machine.run_one(|cpu| {
        let mut tx = hastm::TxThread::new(&runtime, cpu);
        let map = tx.atomic(|tx| Ok(ObjRefWrap(Bst::create(tx))));
        let r: Result<(), hastm::Abort> = tx.try_atomic(|tx| {
            map.0.insert(tx, 1, 100)?;
            map.0.insert(tx, 2, 200)?;
            tx.abort_now()
        });
        assert!(r.is_err());
        tx.atomic(|tx| {
            assert_eq!(map.0.get(tx, 1)?, None);
            assert_eq!(map.0.get(tx, 2)?, None);
            assert!(map.0.is_empty(tx)?);
            Ok(())
        });
    });
    // Silence unused-wrapper lint by using ObjRef in a trivial way.
    struct ObjRefWrap(Bst);
    let _ = ObjRef::NULL;
}
