//! Cross-crate integration: the same workloads produce the same *answers*
//! under every synchronization scheme, and concurrent executions are
//! serializable (the [`hastm::Oracle`] validates every commit).

use hastm::{Granularity, ModePolicy, ObjRef, OracleMode, StmConfig, StmRuntime, TxThread};
use hastm_locks::SpinLock;
use hastm_sim::{Machine, MachineConfig, WorkerFn};
use hastm_workloads::{Scheme, ThreadExec};

#[test]
fn single_thread_results_identical_across_schemes() {
    let mut reference: Option<Vec<u64>> = None;
    for scheme in Scheme::ALL {
        for granularity in [Granularity::Object, Granularity::CacheLine] {
            let mut machine = Machine::new(MachineConfig::default());
            let runtime = StmRuntime::new(
                &mut machine,
                scheme
                    .stm_config(granularity, 1)
                    .with_oracle(OracleMode::Panic),
            );
            let lock = SpinLock::alloc(runtime.heap());
            let (values, _) = machine.run_one(|cpu| {
                let mut ex = ThreadExec::new(scheme, &runtime, cpu, lock);
                let objs: Vec<ObjRef> = (0..8)
                    .map(|_| {
                        let mut o = ObjRef::NULL;
                        ex.atomic(|ctx| {
                            o = ctx.ctx_alloc(2);
                            Ok(())
                        });
                        o
                    })
                    .collect();
                // A deterministic little computation with cross-object flow.
                for round in 0u64..20 {
                    ex.atomic(|ctx| {
                        let src = objs[(round % 8) as usize];
                        let dst = objs[((round + 3) % 8) as usize];
                        let a = ctx.ctx_read(src, 0)?;
                        let b = ctx.ctx_read(dst, 1)?;
                        ctx.ctx_write(dst, 0, a + b + round)?;
                        ctx.ctx_write(src, 1, a ^ round)?;
                        Ok(())
                    });
                }
                let mut out = Vec::new();
                for o in &objs {
                    ex.atomic(|ctx| {
                        out.push(ctx.ctx_read(*o, 0)?);
                        out.push(ctx.ctx_read(*o, 1)?);
                        Ok(())
                    });
                }
                out
            });
            runtime.verify_serializability(&machine);
            match &reference {
                None => reference = Some(values),
                Some(r) => assert_eq!(
                    r, &values,
                    "scheme {scheme} / {granularity:?} diverged from reference"
                ),
            }
        }
    }
}

/// The money-conservation stress from the examples, as a regression test
/// for the nested-rollback/mark-filter interaction.
fn conservation(scheme_cfg: StmConfig, cores: usize, transfers: u32) {
    let mut machine = Machine::new(MachineConfig::with_cores(cores));
    let runtime = StmRuntime::new(&mut machine, scheme_cfg.with_oracle(OracleMode::Panic));
    let n_accts = 12u64;
    let (accounts, _) = machine.run_one(|cpu| {
        let mut tx = TxThread::new(&runtime, cpu);
        let accounts: Vec<ObjRef> = (0..n_accts).map(|_| tx.alloc_obj(1)).collect();
        tx.atomic(|tx| {
            for a in &accounts {
                tx.write_word(*a, 0, 500)?;
            }
            Ok(())
        });
        accounts
    });
    let rt = &runtime;
    let accts = &accounts;
    let workers: Vec<WorkerFn<'_>> = (0..cores)
        .map(|teller| {
            Box::new(move |cpu: &mut hastm_sim::Cpu| {
                let mut tx = TxThread::new(rt, cpu);
                let mut rng = 0xdead_beef_u64 ^ ((teller as u64) << 24);
                for _ in 0..transfers {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    let from = accts[(rng % n_accts) as usize];
                    let to = accts[((rng >> 9) % n_accts) as usize];
                    let amount = 1 + rng % 40;
                    if from == to {
                        continue;
                    }
                    tx.atomic(|tx| {
                        tx.nested(|tx| {
                            let b = tx.read_word(from, 0)?;
                            if b < amount {
                                return tx.retry_now();
                            }
                            tx.write_word(from, 0, b - amount)
                        })?;
                        tx.nested(|tx| {
                            let b = tx.read_word(to, 0)?;
                            tx.write_word(to, 0, b + amount)
                        })?;
                        Ok(())
                    });
                }
            }) as WorkerFn<'_>
        })
        .collect();
    machine.run(workers);
    runtime.verify_serializability(&machine);
    let total: u64 = accounts.iter().map(|a| machine.peek_u64(a.word(0))).sum();
    assert_eq!(total, n_accts * 500, "money conserved");
}

#[test]
fn conservation_stm() {
    conservation(StmConfig::stm(Granularity::Object), 4, 120);
}

#[test]
fn conservation_hastm_watermark() {
    conservation(
        StmConfig::hastm(
            Granularity::Object,
            ModePolicy::AbortRatioWatermark { watermark: 0.1 },
        ),
        4,
        120,
    );
}

#[test]
fn conservation_hastm_cautious() {
    conservation(StmConfig::hastm_cautious(Granularity::Object), 4, 120);
}

#[test]
fn conservation_naive_aggressive() {
    conservation(
        StmConfig::hastm(Granularity::Object, ModePolicy::NaiveAggressive),
        4,
        120,
    );
}

#[test]
fn conservation_cacheline_granularity() {
    conservation(
        StmConfig::hastm(
            Granularity::CacheLine,
            ModePolicy::AbortRatioWatermark { watermark: 0.1 },
        ),
        3,
        120,
    );
}

#[test]
fn runs_are_deterministic() {
    fn one() -> (u64, u64) {
        let mut machine = Machine::new(MachineConfig::with_cores(3));
        let runtime = StmRuntime::new(
            &mut machine,
            StmConfig::hastm(
                Granularity::CacheLine,
                ModePolicy::AbortRatioWatermark { watermark: 0.1 },
            ),
        );
        let (obj, _) = machine.run_one(|cpu| {
            let mut tx = TxThread::new(&runtime, cpu);
            tx.alloc_obj(1)
        });
        let rt = &runtime;
        let report = machine.run(
            (0..3)
                .map(|_| {
                    Box::new(move |cpu: &mut hastm_sim::Cpu| {
                        let mut tx = TxThread::new(rt, cpu);
                        for _ in 0..60 {
                            tx.atomic(|tx| {
                                let v = tx.read_word(obj, 0)?;
                                tx.write_word(obj, 0, v + 1)
                            });
                        }
                    }) as WorkerFn<'_>
                })
                .collect(),
        );
        (machine.peek_u64(obj.word(0)), report.makespan())
    }
    let a = one();
    let b = one();
    assert_eq!(a.0, 180, "all increments applied");
    assert_eq!(a, b, "cycle-exact determinism");
}
