//! Cross-crate integration: language-environment features (GC suspension,
//! context switches, default-ISA correctness) and mode-policy behavior,
//! end to end.

use hastm::{Granularity, Mode, ModePolicy, ObjRef, OracleMode, StmConfig, StmRuntime, TxThread};
use hastm_sim::{IsaLevel, Machine, MachineConfig, WorkerFn};
use hastm_workloads::{run_workload, Scheme, Structure, WorkloadConfig};

/// The §3.3 default ISA: HASTM software runs unchanged and stays correct,
/// merely unaccelerated (every validation is a software walk).
#[test]
fn default_isa_level_correct_but_unaccelerated() {
    let run = |isa: IsaLevel| {
        let mut machine = Machine::new(MachineConfig {
            isa,
            ..MachineConfig::default()
        });
        let runtime = StmRuntime::new(
            &mut machine,
            StmConfig::hastm(Granularity::Object, ModePolicy::SingleThreadAggressive),
        );
        machine
            .run_one(|cpu| {
                let mut tx = TxThread::new(&runtime, cpu);
                let o = tx.alloc_obj(1);
                for i in 0..30u64 {
                    tx.atomic(|tx| {
                        let v = tx.read_word(o, 0)?;
                        tx.write_word(o, 0, v + i)
                    });
                }
                let total = tx.atomic(|tx| tx.read_word(o, 0));
                (total, tx.stats().clone())
            })
            .0
    };
    let (full_total, full_stats) = run(IsaLevel::Full);
    let (def_total, def_stats) = run(IsaLevel::Default);
    assert_eq!(full_total, def_total, "same answers on both ISA levels");
    assert_eq!(full_total, (0..30u64).sum::<u64>());
    assert!(
        full_stats.validations_skipped > 0,
        "full ISA skips validations"
    );
    assert_eq!(
        def_stats.validations_skipped, 0,
        "default ISA conservatively never skips"
    );
    assert_eq!(def_stats.read_fast_path, 0, "default ISA never filters");
}

/// Aggressive mode on the default ISA immediately aborts (counter is
/// conservatively nonzero) and re-executes cautiously — still correct.
#[test]
fn default_isa_aggressive_falls_back() {
    let mut machine = Machine::new(MachineConfig {
        isa: IsaLevel::Default,
        ..MachineConfig::default()
    });
    let runtime = StmRuntime::new(
        &mut machine,
        StmConfig::hastm(Granularity::Object, ModePolicy::NaiveAggressive),
    );
    machine.run_one(|cpu| {
        let mut tx = TxThread::new(&runtime, cpu);
        let o = tx.alloc_obj(1);
        let mut modes = Vec::new();
        tx.atomic(|tx| {
            modes.push(tx.mode());
            let v = tx.read_word(o, 0)?;
            tx.write_word(o, 0, v + 1)
        });
        assert_eq!(
            modes,
            vec![Mode::Aggressive, Mode::Cautious],
            "aggressive attempt, cautious re-execution"
        );
        assert_eq!(tx.stats().commits, 1);
        assert!(
            tx.stats().aborts_mark_dirty >= 1,
            "aggressive attempt must abort on the default ISA"
        );
        assert_eq!(tx.stats().cautious_commits, 1);
    });
}

/// A garbage collection pause in the middle of concurrent transactional
/// execution: the paused thread's transaction survives while other cores
/// keep committing.
#[test]
fn gc_pause_amid_concurrency() {
    let mut machine = Machine::new(MachineConfig::with_cores(2));
    let runtime = StmRuntime::new(
        &mut machine,
        StmConfig::hastm_cautious(Granularity::Object).with_oracle(OracleMode::Panic),
    );
    let (objs, _) = machine.run_one(|cpu| {
        let mut tx = TxThread::new(&runtime, cpu);
        let a = tx.alloc_obj(2);
        let b = tx.alloc_obj(2);
        tx.atomic(|tx| {
            tx.write_word(a, 0, 10)?;
            tx.write_word(b, 0, 20)?;
            Ok(())
        });
        (a, b)
    });
    let (a, b) = objs;
    let rt = &runtime;
    machine.run(vec![
        Box::new(move |cpu: &mut hastm_sim::Cpu| {
            let mut tx = TxThread::new(rt, cpu);
            // Long transaction on `a` with a GC pause + relocation inside.
            tx.atomic(|tx| {
                let v = tx.read_word(a, 0)?;
                tx.write_word(a, 1, v * 2)?;
                let moved = {
                    let mut gc = tx.suspend();
                    gc.relocate_object(a, 2)
                };
                tx.write_word(moved, 0, v + 1)?;
                Ok(())
            });
            assert_eq!(tx.stats().commits, 1);
            assert_eq!(tx.stats().aborts(), 0, "GC never aborts the mutator");
        }) as WorkerFn<'_>,
        Box::new(move |cpu: &mut hastm_sim::Cpu| {
            let mut tx = TxThread::new(rt, cpu);
            // Unrelated traffic on `b` throughout.
            for _ in 0..40 {
                tx.atomic(|tx| {
                    let v = tx.read_word(b, 0)?;
                    tx.write_word(b, 0, v + 1)
                });
            }
        }) as WorkerFn<'_>,
    ]);
    assert_eq!(machine.peek_u64(b.word(0)), 60);
    runtime.verify_serializability(&machine);
}

/// Transactions survive context switches on every core of a concurrent
/// run (HTM cannot do this; HASTM pays one software validation).
#[test]
fn context_switches_amid_concurrency() {
    let mut machine = Machine::new(MachineConfig::with_cores(3));
    let runtime = StmRuntime::new(
        &mut machine,
        StmConfig::hastm(
            Granularity::Object,
            ModePolicy::AbortRatioWatermark { watermark: 0.1 },
        ),
    );
    let (counter, _) = machine.run_one(|cpu| {
        let mut tx = TxThread::new(&runtime, cpu);
        tx.alloc_obj(1)
    });
    let rt = &runtime;
    machine.run(
        (0..3)
            .map(|_| {
                Box::new(move |cpu: &mut hastm_sim::Cpu| {
                    let mut tx = TxThread::new(rt, cpu);
                    for i in 0..30u64 {
                        tx.atomic(|tx| {
                            let v = tx.read_word(counter, 0)?;
                            if i % 7 == 0 {
                                tx.context_switch(5_000);
                            }
                            tx.write_word(counter, 0, v + 1)
                        });
                    }
                }) as WorkerFn<'_>
            })
            .collect(),
    );
    assert_eq!(machine.peek_u64(counter.word(0)), 90);
}

/// The single-thread policy follows the paper: first transaction cautious,
/// then aggressive after each commit, cautious again on re-execution.
#[test]
fn single_thread_policy_transitions() {
    let mut machine = Machine::new(MachineConfig::default());
    let runtime = StmRuntime::new(
        &mut machine,
        StmConfig::hastm(Granularity::Object, ModePolicy::SingleThreadAggressive),
    );
    machine.run_one(|cpu| {
        let mut tx = TxThread::new(&runtime, cpu);
        let o = tx.alloc_obj(1);
        let mut modes = Vec::new();
        for _ in 0..4 {
            tx.atomic(|tx| {
                modes.push(tx.mode());
                let v = tx.read_word(o, 0)?;
                tx.write_word(o, 0, v + 1)
            });
        }
        assert_eq!(
            modes,
            vec![
                Mode::Cautious,
                Mode::Aggressive,
                Mode::Aggressive,
                Mode::Aggressive
            ]
        );
    });
}

/// The watermark policy stays cautious while aborts/dirty commits are
/// frequent, protecting multi-core runs from aggressive re-execution storms
/// (the Figure 21/22 mechanism).
#[test]
fn watermark_policy_stays_cautious_under_interference() {
    let mut cfg = WorkloadConfig::paper_default(Structure::BTree, Scheme::Hastm, 4);
    cfg.ops_per_thread = 150;
    cfg.prepopulate = 2048;
    cfg.key_range = 4096;
    cfg.machine = MachineConfig {
        l1: hastm_sim::CacheConfig::new(64, 4),
        l2: hastm_sim::CacheConfig::new(256, 8),
        prefetch_next_line: true,
        ..MachineConfig::default()
    };
    let hastm = run_workload(&cfg);
    cfg.scheme = Scheme::NaiveAggressive;
    let naive = run_workload(&cfg);
    assert!(
        hastm.txn.aborts_mark_dirty < naive.txn.aborts_mark_dirty,
        "watermark avoids spurious aborts: {} vs naive {}",
        hastm.txn.aborts_mark_dirty,
        naive.txn.aborts_mark_dirty
    );
    assert!(
        naive.txn.aggressive_commits > hastm.txn.aggressive_commits,
        "naive keeps gambling on aggressive mode"
    );
}

/// Inter-atomic mark reuse (Figure 10): with mark clearing disabled,
/// consecutive aggressive transactions filter reads of data cached by
/// earlier transactions — and stay correct.
#[test]
fn inter_atomic_reuse_accelerates_aggressive_mode() {
    let run = |clear: bool| {
        let mut machine = Machine::new(MachineConfig::default());
        let mut cfg = StmConfig::hastm(Granularity::Object, ModePolicy::SingleThreadAggressive);
        cfg.clear_marks_between_txns = clear;
        let runtime = StmRuntime::new(&mut machine, cfg);
        machine
            .run_one(|cpu| {
                let mut tx = TxThread::new(&runtime, cpu);
                let objs: Vec<ObjRef> = (0..16).map(|_| tx.alloc_obj(1)).collect();
                // Repeated read-mostly transactions over the same objects.
                let mut total = 0;
                for _ in 0..20 {
                    total = tx.atomic(|tx| {
                        let mut s = 0;
                        for o in &objs {
                            s += tx.read_word(*o, 0)?;
                        }
                        Ok(s)
                    });
                }
                (total, tx.stats().read_fast_path, tx.cpu().now())
            })
            .0
    };
    let (total_clear, fast_clear, cycles_clear) = run(true);
    let (total_reuse, fast_reuse, cycles_reuse) = run(false);
    assert_eq!(total_clear, total_reuse, "same answers");
    assert!(
        fast_reuse > fast_clear,
        "inter-atomic reuse filters more reads: {fast_reuse} vs {fast_clear}"
    );
    assert!(
        cycles_reuse < cycles_clear,
        "and is faster: {cycles_reuse} vs {cycles_clear}"
    );
}
