//! Determinism regression tests: the simulator's contract is that a run is
//! a pure function of its configuration and seed — *including* cycle
//! counts, cache statistics, and the final memory image — at any thread
//! count and under either schedule policy.
//!
//! These exist because the `hastm-check` determinism sweep has twice
//! caught real regressions the functional tests missed:
//!
//! * HTM watch/violation operations bypassing the logical-clock gate, so
//!   abort timing (and the makespan) depended on host thread scheduling;
//! * worker threads racing on the bump allocator, so heap layout — and
//!   with it cache behavior — permuted run to run.
//!
//! Both bugs left final *values* correct and only wobbled the timing, so
//! an exact [`hastm_sim::RunReport`] comparison is the assertion here.

use hastm::OracleMode;
use hastm_sim::{GateMode, MachineConfig, SchedulePolicy};
use hastm_workloads::{run_workload, Scheme, Structure, WorkloadConfig};

/// A small-but-contended configuration that exercises aborts, log
/// overflow-free paths, and cross-core invalidations.
fn config(scheme: Scheme, threads: usize, schedule: SchedulePolicy) -> WorkloadConfig {
    let mut cfg = WorkloadConfig::paper_default(Structure::HashTable, scheme, threads);
    cfg.ops_per_thread = 60;
    cfg.key_range = 64;
    cfg.prepopulate = 32;
    cfg.machine = MachineConfig {
        schedule,
        ..MachineConfig::default()
    };
    cfg.oracle = OracleMode::Panic;
    cfg
}

/// Runs `cfg` twice and asserts the *entire* observable outcome matches:
/// makespan, every per-core and machine-wide counter, merged transaction
/// statistics, and the final-state digest.
fn assert_reproducible(cfg: &WorkloadConfig, label: &str) {
    let a = run_workload(cfg);
    let b = run_workload(cfg);
    assert_eq!(a.cycles, b.cycles, "{label}: makespan diverged");
    assert_eq!(a.report, b.report, "{label}: simulator counters diverged");
    assert_eq!(a.txn, b.txn, "{label}: transaction stats diverged");
    assert_eq!(a.total_ops, b.total_ops, "{label}: op counts diverged");
    assert_eq!(a.digest, b.digest, "{label}: final state diverged");
}

#[test]
fn deterministic_schedule_reproduces_at_every_thread_count() {
    for scheme in [Scheme::Stm, Scheme::Hastm, Scheme::Hytm] {
        for threads in [1, 2, 4] {
            let cfg = config(scheme, threads, SchedulePolicy::Deterministic);
            assert_reproducible(&cfg, &format!("{scheme:?} x{threads} deterministic"));
        }
    }
}

#[test]
fn fuzzed_schedule_is_equally_reproducible() {
    // Fuzzing perturbs priorities and injects cache pressure, but from a
    // seeded RNG: the exploration itself must replay exactly.
    for scheme in [Scheme::Stm, Scheme::Hastm, Scheme::Hytm] {
        for threads in [2, 4] {
            let cfg = config(scheme, threads, SchedulePolicy::Fuzzed { seed: 0xfeed });
            assert_reproducible(&cfg, &format!("{scheme:?} x{threads} fuzzed"));
        }
    }
}

#[test]
fn fuzzed_quantum_gate_replays_the_per_op_schedule_exactly() {
    // Under `SchedulePolicy::Fuzzed` the per-core priority jitter is
    // re-drawn after every op, so the quantum gate must clamp its quantum
    // to a single op and degenerate into per-op admission. The assertion
    // is total: for a fixed fuzz seed, the quantum run's makespan, every
    // per-core and machine-wide counter, transaction stats, and final
    // digest must be bit-identical to the per-op reference at every
    // simulated core count — including 1 (solo fast path) and 8
    // (more cores than the fuzzed default exercises elsewhere).
    for threads in [1, 2, 4, 8] {
        let mut per_op = config(
            Scheme::Hastm,
            threads,
            SchedulePolicy::Fuzzed { seed: 0xfeed },
        );
        per_op.machine.gate = GateMode::PerOp;
        let mut quantum = per_op.clone();
        quantum.machine.gate = GateMode::Quantum;
        let a = run_workload(&per_op);
        let b = run_workload(&quantum);
        let label = format!("fuzzed x{threads} per-op vs quantum");
        assert_eq!(a.cycles, b.cycles, "{label}: makespan diverged");
        assert_eq!(a.report, b.report, "{label}: simulator counters diverged");
        assert_eq!(a.txn, b.txn, "{label}: transaction stats diverged");
        assert_eq!(a.digest, b.digest, "{label}: final state diverged");
    }
}

#[test]
fn fuzz_seeds_actually_change_the_schedule() {
    // Two different fuzz seeds must explore different interleavings (else
    // the fuzzer is a no-op); the workload's final answer must not care.
    let a = run_workload(&config(
        Scheme::Hastm,
        4,
        SchedulePolicy::Fuzzed { seed: 1 },
    ));
    let b = run_workload(&config(
        Scheme::Hastm,
        4,
        SchedulePolicy::Fuzzed { seed: 2 },
    ));
    assert_ne!(
        a.cycles, b.cycles,
        "different fuzz seeds should produce different schedules"
    );
}

#[test]
fn workload_seed_changes_the_run_but_stays_deterministic() {
    let mut cfg = config(Scheme::Stm, 2, SchedulePolicy::Deterministic);
    cfg.seed = 1;
    let a = run_workload(&cfg);
    assert_reproducible(&cfg, "seed 1");
    cfg.seed = 2;
    let b = run_workload(&cfg);
    assert_ne!(
        (a.cycles, a.digest),
        (b.cycles, b.digest),
        "different workload seeds should differ in schedule or state"
    );
}
