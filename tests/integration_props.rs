//! Property-based cross-crate tests: the simulator against a flat-memory
//! oracle, the TM engine against serializability invariants, and the data
//! structures against a reference map — all under randomized inputs.

use hastm::{Granularity, ModePolicy, ObjRef, OracleMode, StmConfig, StmRuntime, TxThread};
use hastm_locks::SpinLock;
use hastm_sim::{Addr, Machine, MachineConfig, WorkerFn};
use hastm_workloads::{check_against_reference, BTree, Bst, HashTable, Scheme, ThreadExec};
use proptest::prelude::*;

/// A single-core op against the simulator.
#[derive(Clone, Debug)]
enum SimOp {
    Load(u8),
    Store(u8, u64),
    LoadSetMark(u8),
    LoadTestMark(u8),
    LoadResetMark(u8),
    ResetMarkAll,
    Cas(u8, u64, u64),
}

fn sim_op() -> impl Strategy<Value = SimOp> {
    prop_oneof![
        any::<u8>().prop_map(SimOp::Load),
        (any::<u8>(), any::<u64>()).prop_map(|(a, v)| SimOp::Store(a, v)),
        any::<u8>().prop_map(SimOp::LoadSetMark),
        any::<u8>().prop_map(SimOp::LoadTestMark),
        any::<u8>().prop_map(SimOp::LoadResetMark),
        Just(SimOp::ResetMarkAll),
        (any::<u8>(), any::<u64>(), any::<u64>()).prop_map(|(a, e, n)| SimOp::Cas(a, e, n)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Values read through the cache hierarchy always equal a flat-memory
    /// oracle's, regardless of evictions, marks, or CAS traffic; and the
    /// mark counter only moves forward between explicit resets.
    #[test]
    fn simulator_matches_flat_memory_oracle(ops in proptest::collection::vec(sim_op(), 1..200)) {
        // Use a tiny cache so evictions actually happen.
        let mut machine = Machine::new(MachineConfig {
            l1: hastm_sim::CacheConfig::new(4, 2),
            l2: hastm_sim::CacheConfig::new(8, 2),
            ..MachineConfig::default()
        });
        machine.run_one(|cpu| {
            let mut oracle = std::collections::HashMap::<u64, u64>::new();
            let addr_of = |a: u8| Addr(0x1_0000 + (a as u64) * 8);
            cpu.reset_mark_counter();
            let mut last_counter = 0;
            for op in &ops {
                match *op {
                    SimOp::Load(a) => {
                        let v = cpu.load_u64(addr_of(a));
                        prop_assert_eq!(v, oracle.get(&(a as u64)).copied().unwrap_or(0));
                    }
                    SimOp::Store(a, v) => {
                        cpu.store_u64(addr_of(a), v);
                        oracle.insert(a as u64, v);
                    }
                    SimOp::LoadSetMark(a) => {
                        let v = cpu.load_set_mark_u64(addr_of(a));
                        prop_assert_eq!(v, oracle.get(&(a as u64)).copied().unwrap_or(0));
                    }
                    SimOp::LoadTestMark(a) => {
                        let (v, _) = cpu.load_test_mark_u64(addr_of(a));
                        prop_assert_eq!(v, oracle.get(&(a as u64)).copied().unwrap_or(0));
                    }
                    SimOp::LoadResetMark(a) => {
                        let v = cpu.load_reset_mark_u64(addr_of(a));
                        prop_assert_eq!(v, oracle.get(&(a as u64)).copied().unwrap_or(0));
                    }
                    SimOp::ResetMarkAll => cpu.reset_mark_all(),
                    SimOp::Cas(a, e, n) => {
                        let old = cpu.cas_u64(addr_of(a), e, n);
                        let expect_old = oracle.get(&(a as u64)).copied().unwrap_or(0);
                        prop_assert_eq!(old, expect_old);
                        if old == e {
                            oracle.insert(a as u64, n);
                        }
                    }
                }
                let c = cpu.read_mark_counter();
                prop_assert!(c >= last_counter, "mark counter is monotone");
                last_counter = c;
            }
            Ok(())
        }).0?;
    }

    /// A marked line that is still marked was never remotely written since
    /// marking: loadtestmark==true implies the loaded value equals the
    /// value captured at loadsetmark time, across random single-core
    /// streams (single core: only evictions can clear marks).
    #[test]
    fn surviving_marks_imply_unchanged_remotely(ops in proptest::collection::vec(sim_op(), 1..150)) {
        let mut machine = Machine::new(MachineConfig {
            l1: hastm_sim::CacheConfig::new(4, 2),
            ..MachineConfig::default()
        });
        machine.run_one(|cpu| {
            let addr_of = |a: u8| Addr(0x2_0000 + (a as u64) * 8);
            // marked_at[a] = value when we last loadsetmark'ed it.
            let mut marked_at = std::collections::HashMap::<u8, u64>::new();
            for op in &ops {
                match *op {
                    SimOp::LoadSetMark(a) => {
                        let v = cpu.load_set_mark_u64(addr_of(a));
                        marked_at.insert(a, v);
                    }
                    SimOp::LoadTestMark(a) => {
                        let (v, marked) = cpu.load_test_mark_u64(addr_of(a));
                        if marked {
                            // Single core, own stores excluded from the map
                            // below, so the value must match.
                            if let Some(&seen) = marked_at.get(&a) {
                                prop_assert_eq!(v, seen);
                            }
                        }
                    }
                    SimOp::Store(a, v) => {
                        cpu.store_u64(addr_of(a), v);
                        // Own store: update expectation (marks survive).
                        if marked_at.contains_key(&a) {
                            marked_at.insert(a, v);
                        }
                    }
                    SimOp::Load(a) => {
                        cpu.load_u64(addr_of(a));
                    }
                    SimOp::LoadResetMark(a) => {
                        cpu.load_reset_mark_u64(addr_of(a));
                        marked_at.remove(&a);
                    }
                    SimOp::ResetMarkAll => {
                        cpu.reset_mark_all();
                        marked_at.clear();
                    }
                    SimOp::Cas(a, e, n) => {
                        let old = cpu.cas_u64(addr_of(a), e, n);
                        if old == e && marked_at.contains_key(&a) {
                            marked_at.insert(a, n);
                        }
                    }
                }
            }
            Ok(())
        }).0?;
    }
}

/// One random map operation.
#[derive(Clone, Debug)]
struct MapOps(Vec<(u8, u64)>);

fn map_ops(max_key: u64) -> impl Strategy<Value = MapOps> {
    proptest::collection::vec((any::<u8>(), 0..max_key), 1..250).prop_map(MapOps)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Every structure matches a reference BTreeMap on random op streams,
    /// under the full HASTM stack (single thread, aggressive mode active).
    #[test]
    fn structures_match_reference_under_hastm(ops in map_ops(48), which in 0..3usize) {
        let mut machine = Machine::new(MachineConfig::default());
        let runtime = StmRuntime::new(
            &mut machine,
            StmConfig::hastm(Granularity::CacheLine, ModePolicy::SingleThreadAggressive),
        );
        machine.run_one(|cpu| {
            let mut tx = TxThread::new(&runtime, cpu);
            match which {
                0 => {
                    let m = tx.atomic(|tx| Ok(HashTable::create(tx, 16)));
                    tx.atomic(|tx| { check_against_reference(&m, tx, &ops.0); Ok(()) });
                }
                1 => {
                    let m = tx.atomic(|tx| Ok(Bst::create(tx)));
                    tx.atomic(|tx| {
                        check_against_reference(&m, tx, &ops.0);
                        m.check_invariants(tx)?;
                        Ok(())
                    });
                }
                _ => {
                    let m = tx.atomic(|tx| BTree::create(tx));
                    tx.atomic(|tx| {
                        check_against_reference(&m, tx, &ops.0);
                        m.check_invariants(tx)?;
                        Ok(())
                    });
                }
            }
        });
    }

    /// Concurrent random increments across schemes never lose updates
    /// (serializability of read-modify-write), checked against the exact
    /// expected sum.
    #[test]
    fn no_lost_updates_under_any_scheme(
        seed in any::<u64>(),
        scheme_idx in 0..6usize,
        cores in 2..4usize,
    ) {
        let scheme = [
            Scheme::Lock,
            Scheme::Stm,
            Scheme::HastmCautious,
            Scheme::Hastm,
            Scheme::NaiveAggressive,
            Scheme::Hytm,
        ][scheme_idx];
        let mut machine = Machine::new(MachineConfig::with_cores(cores));
        let runtime = StmRuntime::new(
            &mut machine,
            scheme
                .stm_config(Granularity::CacheLine, cores)
                .with_oracle(OracleMode::Panic),
        );
        let lock = SpinLock::alloc(runtime.heap());
        let rt = &runtime;
        let (cells, _) = machine.run_one(|cpu| {
            let mut ex = ThreadExec::new(Scheme::Sequential, rt, cpu, lock);
            let cells: Vec<ObjRef> = (0..4)
                .map(|_| {
                    let mut o = ObjRef::NULL;
                    ex.atomic(|ctx| {
                        o = ctx.ctx_alloc(1);
                        Ok(())
                    });
                    o
                })
                .collect();
            cells
        });
        let cells_ref = &cells;
        let per_thread = 40u64;
        let workers: Vec<WorkerFn<'_>> = (0..cores)
            .map(|tid| {
                Box::new(move |cpu: &mut hastm_sim::Cpu| {
                    let mut ex = ThreadExec::new(scheme, rt, cpu, lock);
                    let mut rng = seed | 1 ^ ((tid as u64) << 32);
                    for _ in 0..per_thread {
                        rng ^= rng << 13;
                        rng ^= rng >> 7;
                        rng ^= rng << 17;
                        let cell = cells_ref[(rng % 4) as usize];
                        ex.atomic(|ctx| {
                            let v = ctx.ctx_read(cell, 0)?;
                            ctx.ctx_write(cell, 0, v + 1)
                        });
                    }
                }) as WorkerFn<'_>
            })
            .collect();
        machine.run(workers);
        let violations = runtime.verify_serializability(&machine);
        prop_assert!(violations.is_empty(), "oracle violations: {:?}", violations);
        let total: u64 = cells.iter().map(|c| machine.peek_u64(c.word(0))).sum();
        prop_assert_eq!(total, per_thread * cores as u64, "scheme {}", scheme);
    }
}
